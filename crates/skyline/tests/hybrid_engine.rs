//! Integration tests of the hybrid strategy recommended in Section 5.3: "A hybrid approach
//! adopting IPO Tree for popular values and SFS-A for handling queries involving the remaining
//! values is a sound solution."

use skyline::datagen::workload::top_k_values;
use skyline::prelude::*;
use skyline_core::algo::bnl;
use std::sync::Arc;

/// A Zipf-skewed synthetic workload (popular values exist, so the truncated tree makes sense).
fn synthetic() -> (Arc<Dataset>, Template) {
    let config = ExperimentConfig {
        n: 1_500,
        numeric_dims: 2,
        nominal_dims: 2,
        cardinality: 8,
        theta: 1.0,
        pref_order: 2,
        distribution: Distribution::AntiCorrelated,
        seed: 7,
    };
    let data = config.generate_dataset();
    let template = config.template(&data);
    (Arc::new(data), template)
}

#[test]
fn hybrid_answers_every_query_correctly_and_uses_both_paths() {
    let (data, template) = synthetic();
    let engine = SkylineEngine::build(
        data.clone(),
        template.clone(),
        EngineConfig::Hybrid { top_k: 3 },
    )
    .unwrap();

    let mut generator = QueryGenerator::new(11);
    let mut used_tree = 0;
    let mut used_fallback = 0;
    for i in 0..60 {
        // Alternate between queries restricted to popular values and unrestricted ones.
        let allowed = top_k_values(&data, 3);
        let pref = if i % 2 == 0 {
            generator.random_preference(data.schema(), &template, 2, Some(&allowed))
        } else {
            generator.random_preference(data.schema(), &template, 3, None)
        };
        let outcome = engine.query(&pref).unwrap();
        match outcome.method {
            MethodUsed::IpoTree => used_tree += 1,
            MethodUsed::AdaptiveSfs => used_fallback += 1,
            MethodUsed::SfsD => panic!("hybrid never falls back to SFS-D"),
        }
        let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
        assert_eq!(outcome.skyline, bnl::skyline(&ctx), "query {i}");
    }
    assert!(used_tree > 0, "the materialized tree was never used");
    assert!(
        used_fallback > 0,
        "the Adaptive SFS fallback was never used"
    );
}

#[test]
fn hybrid_matches_the_dedicated_engines() {
    let (data, template) = synthetic();
    let hybrid = SkylineEngine::build(
        data.clone(),
        template.clone(),
        EngineConfig::Hybrid { top_k: 4 },
    )
    .unwrap();
    let full_tree =
        SkylineEngine::build(data.clone(), template.clone(), EngineConfig::IpoTree).unwrap();
    let adaptive =
        SkylineEngine::build(data.clone(), template.clone(), EngineConfig::AdaptiveSfs).unwrap();

    let mut generator = QueryGenerator::new(23);
    for _ in 0..30 {
        let pref = generator.random_preference(data.schema(), &template, 3, None);
        let expected = adaptive.query(&pref).unwrap().skyline;
        assert_eq!(hybrid.query(&pref).unwrap().skyline, expected);
        assert_eq!(full_tree.query(&pref).unwrap().skyline, expected);
    }
}

#[test]
fn truncated_tree_is_smaller_than_the_full_tree() {
    let (data, template) = synthetic();
    let full = IpoTreeBuilder::new().build(&data, &template).unwrap();
    let truncated = IpoTreeBuilder::new()
        .top_k_values(3)
        .build(&data, &template)
        .unwrap();
    assert!(truncated.node_count() < full.node_count());
    let full_storage = skyline::ipo::storage::ipo_tree_storage(&full);
    let truncated_storage = skyline::ipo::storage::ipo_tree_storage(&truncated);
    assert!(truncated_storage.total_bytes() < full_storage.total_bytes());
    // Both answer popular-value queries identically.
    let mut generator = QueryGenerator::new(5);
    let allowed = top_k_values(&data, 3);
    for _ in 0..20 {
        let pref = generator.random_preference(data.schema(), &template, 2, Some(&allowed));
        assert_eq!(
            truncated.query(&data, &pref).unwrap(),
            full.query(&data, &pref).unwrap()
        );
    }
}
