//! Smoke test: the `quickstart` and `nursery_real_data` examples must run to successful exit.
//!
//! `cargo test` compiles every example of the package before running integration tests, so the
//! binaries are guaranteed to exist under `target/<profile>/examples/` next to this test
//! binary (which lives in `target/<profile>/deps/`).

use std::path::PathBuf;
use std::process::Command;

fn example_path(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // <profile>/
    path.push("examples");
    path.push(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run_example(name: &str) {
    let path = example_path(name);
    assert!(
        path.exists(),
        "example binary {} not found; `cargo test` should have built it",
        path.display()
    );
    let output = Command::new(&path).output().expect("example spawns");
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn quickstart_example_runs() {
    run_example("quickstart");
}

#[test]
fn nursery_real_data_example_runs() {
    run_example("nursery_real_data");
}
