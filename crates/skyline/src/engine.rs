//! A unified query engine over the paper's algorithms, including the hybrid strategy of §5.3
//! and a dynamic-dataset mutation path (epoch-tracked inserts and logical deletes).

use skyline_adaptive::{AdaptiveSfs, QueryScratch};
use skyline_core::algo::sfs;
use skyline_core::kernel::{CompiledRelation, DatasetEpoch, PointBlock};
use skyline_core::score::ScoreFn;
use skyline_core::{Dataset, PointId, Preference, Result, SkylineError, Template, ValueId};
use skyline_ipo::{BitmapIpoTree, IpoTree, IpoTreeBuilder};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Which algorithm an engine instance materializes and uses to answer queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineConfig {
    /// No preprocessing; every query runs sort-first-skyline over the whole dataset
    /// (the paper's **SFS-D** baseline).
    SfsD,
    /// Adaptive SFS over the presorted template skyline (**SFS-A**).
    AdaptiveSfs,
    /// Full IPO tree (every nominal value materialized), set-based evaluation.
    IpoTree,
    /// IPO tree restricted to the `k` most frequent values per nominal dimension
    /// (**IPO Tree-10** uses `k = 10`). Queries touching other values are rejected.
    IpoTreeTopK(usize),
    /// Bitmap IPO tree (full materialization, bitwise evaluation).
    BitmapIpoTree,
    /// The recommendation of §5.3: an IPO tree over the `top_k` most frequent values for the
    /// popular queries, with Adaptive SFS as the fallback for everything else.
    Hybrid {
        /// Number of most-frequent values materialized per nominal dimension.
        top_k: usize,
    },
}

/// The algorithm that actually produced a query answer (interesting for the hybrid engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodUsed {
    /// Answered by the full-dataset SFS baseline.
    SfsD,
    /// Answered by Adaptive SFS.
    AdaptiveSfs,
    /// Answered by the (set-based or bitmap) IPO tree.
    IpoTree,
}

/// A query answer plus provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The skyline under the query preference, as sorted point ids.
    pub skyline: Vec<PointId>,
    /// Which algorithm produced it.
    pub method: MethodUsed,
}

/// A configured skyline query engine bound to a dataset and a template.
///
/// The dataset is held by shared ownership ([`Arc`]), which makes the engine `Send + Sync`:
/// build it once, wrap it in an `Arc`, and answer queries from as many threads as you like
/// (`query` takes `&self` and only reads). The `skyline-service` crate builds its concurrent,
/// cache-backed query service on exactly this property.
///
/// # Dynamic datasets
///
/// [`SkylineEngine::insert_row`] and [`SkylineEngine::delete_row`] mutate the bound dataset in
/// place (`&mut self`) and return the new [`DatasetEpoch`]; every answered query is implicitly
/// relative to the epoch it ran at, and [`SkylineEngine::query_at`] rejects a stale
/// expectation with [`SkylineError::EpochMismatch`]. Configurations that answer purely from
/// materialized IPO structures ([`EngineConfig::IpoTree`], [`EngineConfig::IpoTreeTopK`],
/// [`EngineConfig::BitmapIpoTree`]) are frozen and reject mutations — rebuild them instead.
/// The hybrid configuration stays fully servable: after a mutation its truncated tree is
/// stale, so every query routes to the incrementally maintained Adaptive-SFS side until the
/// engine is rebuilt. To share one mutable engine between threads, wrap it in a
/// [`SharedEngine`].
#[derive(Debug, Clone)]
pub struct SkylineEngine {
    /// Dataset handle; `None` when an Adaptive SFS structure owns the data (the
    /// [`EngineConfig::AdaptiveSfs`] and [`EngineConfig::Hybrid`] configurations), so mutable
    /// state has exactly one owner and incremental updates never copy it.
    data: Option<Arc<Dataset>>,
    /// Row-major interleaved copy of the dataset for the compiled dominance kernel. `Some`
    /// only for [`EngineConfig::SfsD`]: Adaptive-SFS configurations expose their structure's
    /// block, and pure IPO-tree configurations never run a dominance scan.
    block: Option<Arc<PointBlock>>,
    template: Template,
    config: EngineConfig,
    ipo: Option<IpoTree>,
    bitmap: Option<BitmapIpoTree>,
    asfs: Option<AdaptiveSfs>,
    /// Epoch the materialized IPO structures were built at; when the dataset has moved past
    /// it, the hybrid configuration stops consulting its (stale) tree.
    tree_epoch: DatasetEpoch,
}

/// A skyline engine shared between readers and writers: `Arc<RwLock<SkylineEngine>>` with the
/// lock handling folded in.
///
/// Queries take the read lock (many concurrent readers); [`SkylineEngine::insert_row`] /
/// [`SkylineEngine::delete_row`] take the write lock through [`SharedEngine::write`] and
/// update the engine in place. Cloning a `SharedEngine` is one `Arc` clone — every clone sees
/// the same engine and the same mutations. Do not hold a guard across calls that re-lock the
/// same `SharedEngine` (the usual read-vs-write deadlock rules of [`RwLock`] apply).
#[derive(Debug, Clone)]
pub struct SharedEngine {
    inner: Arc<RwLock<SkylineEngine>>,
}

impl SharedEngine {
    /// Wraps an engine for shared mutable access.
    pub fn new(engine: SkylineEngine) -> Self {
        Self {
            inner: Arc::new(RwLock::new(engine)),
        }
    }

    /// Read access (shared, concurrent).
    pub fn read(&self) -> RwLockReadGuard<'_, SkylineEngine> {
        self.inner.read().expect("engine lock poisoned")
    }

    /// Write access (exclusive) for mutations.
    pub fn write(&self) -> RwLockWriteGuard<'_, SkylineEngine> {
        self.inner.write().expect("engine lock poisoned")
    }
}

impl From<SkylineEngine> for SharedEngine {
    fn from(engine: SkylineEngine) -> Self {
        Self::new(engine)
    }
}

/// Reusable per-thread buffers for [`SkylineEngine::query_with_scratch`].
///
/// A worker thread serving many queries hands the same scratch to every call so the
/// per-query candidate and elimination buffers are reused instead of reallocated (the
/// `skyline-service` batch executor keeps one per worker).
#[derive(Debug, Default)]
pub struct EngineScratch {
    asfs: QueryScratch,
}

impl EngineScratch {
    /// Creates an empty scratch (equivalent to [`EngineScratch::default`]).
    pub fn new() -> Self {
        Self::default()
    }
}

impl SkylineEngine {
    /// Builds the engine, performing whatever preprocessing the configuration requires.
    ///
    /// Accepts either an owned [`Dataset`] or an [`Arc<Dataset>`]; pass the same `Arc` to
    /// several engines to share one copy of the data between them.
    pub fn build(
        data: impl Into<Arc<Dataset>>,
        template: Template,
        config: EngineConfig,
    ) -> Result<Self> {
        let data = data.into();
        let mut ipo = None;
        let mut bitmap = None;
        let mut asfs = None;
        // The point block is built exactly once per engine; configurations that carry an
        // Adaptive SFS structure let it own the block (the engine exposes it by delegation),
        // so mutations have a single owner and never transpose the dataset twice.
        let mut block: Option<Arc<PointBlock>> = None;
        let mut owned_data = None;
        match config {
            EngineConfig::SfsD => {
                block = Some(Arc::new(PointBlock::new(&data)));
                owned_data = Some(data);
            }
            EngineConfig::AdaptiveSfs => {
                asfs = Some(AdaptiveSfs::build(data, &template)?);
            }
            EngineConfig::IpoTree => {
                ipo = Some(IpoTreeBuilder::new().build(&data, &template)?);
                owned_data = Some(data);
            }
            EngineConfig::IpoTreeTopK(k) => {
                ipo = Some(
                    IpoTreeBuilder::new()
                        .top_k_values(k)
                        .build(&data, &template)?,
                );
                owned_data = Some(data);
            }
            EngineConfig::BitmapIpoTree => {
                let tree = IpoTreeBuilder::new().build(&data, &template)?;
                bitmap = Some(BitmapIpoTree::from_tree(&tree, &data));
                owned_data = Some(data);
            }
            EngineConfig::Hybrid { top_k } => {
                let tree = IpoTreeBuilder::new()
                    .top_k_values(top_k)
                    .build(&data, &template)?;
                let shared = Arc::new(PointBlock::new(&data));
                asfs = Some(AdaptiveSfs::from_precomputed_with_block(
                    data,
                    shared,
                    template.clone(),
                    tree.skyline().to_vec(),
                )?);
                ipo = Some(tree);
            }
        }
        Ok(Self {
            data: owned_data,
            block,
            template,
            config,
            ipo,
            bitmap,
            asfs,
            tree_epoch: DatasetEpoch::INITIAL,
        })
    }

    /// The dataset the engine is bound to.
    pub fn dataset(&self) -> &Dataset {
        self.dataset_arc()
    }

    /// Shared handle to the dataset (cheap to clone; hand it to sibling engines or threads).
    pub fn dataset_arc(&self) -> &Arc<Dataset> {
        match &self.asfs {
            Some(asfs) => asfs.dataset_arc(),
            None => self.data.as_ref().expect("set in build()"),
        }
    }

    /// The shared row-major point layout the compiled dominance kernel evaluates over.
    ///
    /// `None` for pure IPO-tree configurations, which answer queries from materialized sets
    /// and never run a dominance scan.
    pub fn point_block(&self) -> Option<&Arc<PointBlock>> {
        match &self.asfs {
            Some(asfs) => Some(asfs.point_block()),
            None => self.block.as_ref(),
        }
    }

    /// The engine's current mutation epoch (bumped by every insert and every live delete).
    pub fn epoch(&self) -> DatasetEpoch {
        self.point_block()
            .map(|b| b.epoch())
            .unwrap_or(DatasetEpoch::INITIAL)
    }

    /// Number of live (non-deleted) rows the engine serves.
    pub fn live_rows(&self) -> usize {
        self.point_block()
            .map(|b| b.live_count())
            .unwrap_or_else(|| self.dataset().len())
    }

    /// True when row `p` exists and has not been logically deleted.
    pub fn is_row_live(&self, p: PointId) -> bool {
        self.point_block()
            .map(|b| b.is_live(p))
            .unwrap_or_else(|| (p as usize) < self.dataset().len())
    }

    /// The template shared by all queries.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The materialized IPO tree, when the configuration has one.
    pub fn ipo_tree(&self) -> Option<&IpoTree> {
        self.ipo.as_ref()
    }

    /// The Adaptive SFS structure, when the configuration has one.
    pub fn adaptive(&self) -> Option<&AdaptiveSfs> {
        self.asfs.as_ref()
    }

    /// Mutable access to the Adaptive SFS structure (e.g. to trigger an explicit
    /// [`AdaptiveSfs::compact`]); requires a mutable configuration.
    pub fn adaptive_mut(&mut self) -> Option<&mut AdaptiveSfs> {
        self.asfs.as_mut()
    }

    /// Errors exactly when [`SkylineEngine::query`] would reject `pref` without computing a
    /// skyline: schema validation, template refinement, and — for configurations whose query
    /// path rejects unmaterialized values — the materialization predicate.
    ///
    /// This is the engine-level servability policy in one place; the `skyline-service` result
    /// cache consults it before a lookup so that cache state can never change which inputs
    /// are accepted. The hybrid configuration needs no materialization check: it answers
    /// unmaterialized preferences via its Adaptive-SFS fallback.
    pub fn check_servable(&self, pref: &Preference) -> Result<()> {
        let schema = self.dataset().schema();
        pref.validate(schema)?;
        self.template.check_refinement(schema, pref)?;
        match self.config {
            EngineConfig::IpoTree | EngineConfig::IpoTreeTopK(_) => {
                let tree = self.ipo.as_ref().expect("built in build()");
                tree.require_materialized(schema, pref)
            }
            EngineConfig::BitmapIpoTree => {
                let tree = self.bitmap.as_ref().expect("built in build()");
                tree.require_materialized(schema, pref)
            }
            EngineConfig::SfsD | EngineConfig::AdaptiveSfs | EngineConfig::Hybrid { .. } => Ok(()),
        }
    }

    /// Like [`SkylineEngine::check_servable`], additionally failing with
    /// [`SkylineError::EpochMismatch`] when the engine has moved past `epoch` — the check a
    /// caller holding epoch-tagged derived state (a result cache, a materialized view) runs
    /// before trusting that state.
    pub fn check_servable_at(&self, pref: &Preference, epoch: DatasetEpoch) -> Result<()> {
        self.ensure_epoch(epoch)?;
        self.check_servable(pref)
    }

    /// True when this configuration supports [`SkylineEngine::insert_row`] /
    /// [`SkylineEngine::delete_row`]. Pure IPO-tree configurations are frozen.
    pub fn supports_mutation(&self) -> bool {
        matches!(
            self.config,
            EngineConfig::SfsD | EngineConfig::AdaptiveSfs | EngineConfig::Hybrid { .. }
        )
    }

    /// Inserts a row (numeric values in numeric-index order, nominal value ids in
    /// nominal-index order) and returns the new [`DatasetEpoch`].
    ///
    /// Adaptive-SFS-backed configurations update their skyline structures incrementally (one
    /// dominance check against the current skyline plus `O(log n)` list updates); SFS-D only
    /// appends to its data and point block, since it scans per query anyway. Pure IPO-tree
    /// configurations reject mutations. If other `Arc` handles to the dataset are still held
    /// outside the engine, the first mutation copies the data once so those handles keep an
    /// immutable snapshot; afterwards the engine owns its copy and mutates in place.
    pub fn insert_row(&mut self, numeric: &[f64], nominal: &[ValueId]) -> Result<DatasetEpoch> {
        self.require_mutable()?;
        if let Some(asfs) = &mut self.asfs {
            asfs.insert_row(numeric, nominal)?;
        } else {
            let data = self.data.as_mut().expect("mutable configs hold data");
            Arc::make_mut(data).push_row_ids(numeric, nominal)?;
            let block = self.block.as_mut().expect("SfsD builds its block");
            Arc::make_mut(block).append_row(numeric, nominal)?;
        }
        Ok(self.epoch())
    }

    /// Logically deletes a row and returns the new [`DatasetEpoch`].
    ///
    /// Deleting an already-deleted row is a no-op that returns the current epoch unchanged;
    /// rows that never existed are an error. See [`SkylineEngine::insert_row`] for the
    /// configuration and sharing rules.
    pub fn delete_row(&mut self, p: PointId) -> Result<DatasetEpoch> {
        self.require_mutable()?;
        if let Some(asfs) = &mut self.asfs {
            asfs.delete_row(p)?;
        } else {
            let block = self.block.as_mut().expect("SfsD builds its block");
            Arc::make_mut(block).tombstone(p)?;
        }
        Ok(self.epoch())
    }

    fn require_mutable(&self) -> Result<()> {
        if self.supports_mutation() {
            Ok(())
        } else {
            Err(SkylineError::InvalidArgument(format!(
                "engine configuration {:?} answers from frozen materialized structures and \
                 does not support mutation; rebuild the engine instead",
                self.config
            )))
        }
    }

    fn ensure_epoch(&self, expected: DatasetEpoch) -> Result<()> {
        let actual = self.epoch();
        if actual == expected {
            Ok(())
        } else {
            Err(SkylineError::EpochMismatch {
                expected: expected.get(),
                actual: actual.get(),
            })
        }
    }

    /// Answers an implicit-preference query.
    pub fn query(&self, pref: &Preference) -> Result<QueryOutcome> {
        let mut scratch = EngineScratch::default();
        self.query_with_scratch(pref, &mut scratch)
    }

    /// Like [`SkylineEngine::query_with_scratch`], validating that the engine is still at
    /// `epoch` first — the answer is guaranteed to be computed against exactly that dataset
    /// version or the call fails with [`SkylineError::EpochMismatch`].
    pub fn query_at(
        &self,
        pref: &Preference,
        epoch: DatasetEpoch,
        scratch: &mut EngineScratch,
    ) -> Result<QueryOutcome> {
        self.ensure_epoch(epoch)?;
        self.query_with_scratch(pref, scratch)
    }

    /// Like [`SkylineEngine::query`], reusing caller-owned scratch buffers across queries.
    ///
    /// Threads that answer many queries (the `skyline-service` worker pool) keep one
    /// [`EngineScratch`] each so the per-query merge and elimination buffers are recycled
    /// instead of reallocated.
    pub fn query_with_scratch(
        &self,
        pref: &Preference,
        scratch: &mut EngineScratch,
    ) -> Result<QueryOutcome> {
        match self.config {
            EngineConfig::SfsD => self.query_sfs_d(pref),
            EngineConfig::AdaptiveSfs => {
                let asfs = self.asfs.as_ref().expect("built in build()");
                Ok(QueryOutcome {
                    skyline: asfs.query_with_scratch(pref, &mut scratch.asfs)?,
                    method: MethodUsed::AdaptiveSfs,
                })
            }
            EngineConfig::IpoTree | EngineConfig::IpoTreeTopK(_) => {
                let tree = self.ipo.as_ref().expect("built in build()");
                Ok(QueryOutcome {
                    skyline: tree.query(self.dataset(), pref)?,
                    method: MethodUsed::IpoTree,
                })
            }
            EngineConfig::BitmapIpoTree => {
                let tree = self.bitmap.as_ref().expect("built in build()");
                Ok(QueryOutcome {
                    skyline: tree.query(self.dataset(), pref)?,
                    method: MethodUsed::IpoTree,
                })
            }
            EngineConfig::Hybrid { .. } => {
                // Same predicate the truncated tree's query rejection uses (Section 5.3):
                // popular (fully materialized) preferences go to the IPO tree, everything
                // else to Adaptive SFS. The tree was materialized at `tree_epoch`; once the
                // dataset moves past it, every query routes to the incrementally maintained
                // fallback so a stale tree can never answer.
                let tree = self.ipo.as_ref().expect("built in build()");
                if self.epoch() == self.tree_epoch && tree.materializes(pref) {
                    Ok(QueryOutcome {
                        skyline: tree.query(self.dataset(), pref)?,
                        method: MethodUsed::IpoTree,
                    })
                } else {
                    let asfs = self.asfs.as_ref().expect("built in build()");
                    Ok(QueryOutcome {
                        skyline: asfs.query_with_scratch(pref, &mut scratch.asfs)?,
                        method: MethodUsed::AdaptiveSfs,
                    })
                }
            }
        }
    }

    /// The SFS-D baseline path: score-sort the live rows with the query ranking, then run
    /// the elimination scan on the compiled dominance kernel (the engine's shared point block
    /// plus orders compiled for this query). Tombstoned rows never enter the candidate list,
    /// so the compiled scan skips them without any rebuild.
    fn query_sfs_d(&self, pref: &Preference) -> Result<QueryOutcome> {
        let block = self
            .block
            .as_ref()
            .expect("SfsD engines build their point block in build()");
        let data = self.dataset();
        let dom = CompiledRelation::for_query(block.clone(), data.schema(), &self.template, pref)?;
        let score = ScoreFn::for_preference(data.schema(), pref)?;
        let all: Vec<PointId> = block.live_ids().collect();
        let sorted = score.sort_by_score(data, &all);
        let mut skyline = sfs::scan_presorted(&dom, &sorted);
        skyline.sort_unstable();
        Ok(QueryOutcome {
            skyline,
            method: MethodUsed::SfsD,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::algo::bnl;
    use skyline_core::{
        DatasetBuilder, Dimension, DominanceContext, RowValue, Schema, SkylineError,
    };

    fn table3_data() -> Arc<Dataset> {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group, airline) in [
            (1600.0, 4.0, "T", "G"),
            (2400.0, 1.0, "T", "G"),
            (3000.0, 5.0, "H", "G"),
            (3600.0, 4.0, "H", "R"),
            (2400.0, 2.0, "M", "R"),
            (3000.0, 3.0, "M", "W"),
        ] {
            b.push_row([
                RowValue::Num(price),
                RowValue::Num(-class),
                group.into(),
                airline.into(),
            ])
            .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn every_engine_config_agrees_with_the_oracle() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let configs = [
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::IpoTree,
            EngineConfig::BitmapIpoTree,
            EngineConfig::Hybrid { top_k: 3 },
        ];
        let specs: Vec<Vec<(&str, &str)>> = vec![
            vec![("hotel-group", "M < *")],
            vec![("hotel-group", "M < H < *"), ("airline", "G < R < *")],
            vec![("airline", "W < *")],
            vec![],
        ];
        for config in configs {
            let engine = SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            assert_eq!(engine.config(), config);
            for spec in &specs {
                let pref = Preference::parse(&schema, spec.clone()).unwrap();
                let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
                let expected = bnl::skyline(&ctx);
                let outcome = engine.query(&pref).unwrap();
                assert_eq!(
                    outcome.skyline, expected,
                    "config {config:?}, spec {spec:?}"
                );
            }
        }
    }

    #[test]
    fn hybrid_falls_back_to_adaptive_sfs_for_unpopular_values() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let engine = SkylineEngine::build(
            data.clone(),
            template.clone(),
            EngineConfig::Hybrid { top_k: 1 },
        )
        .unwrap();
        // Airline G (id 0) is the most frequent: materialized → answered by the IPO tree.
        let popular = Preference::parse(&schema, [("airline", "G < *")]).unwrap();
        assert_eq!(engine.query(&popular).unwrap().method, MethodUsed::IpoTree);
        // Airline W is unpopular → falls back to Adaptive SFS, same answer as the oracle.
        let unpopular = Preference::parse(&schema, [("airline", "W < *")]).unwrap();
        let outcome = engine.query(&unpopular).unwrap();
        assert_eq!(outcome.method, MethodUsed::AdaptiveSfs);
        let ctx = DominanceContext::for_query(&data, &template, &unpopular).unwrap();
        assert_eq!(outcome.skyline, bnl::skyline(&ctx));
    }

    #[test]
    fn top_k_engine_rejects_unmaterialized_values() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let engine =
            SkylineEngine::build(data.clone(), template, EngineConfig::IpoTreeTopK(1)).unwrap();
        let unpopular = Preference::parse(&schema, [("airline", "W < *")]).unwrap();
        assert!(matches!(
            engine.query(&unpopular),
            Err(SkylineError::NotMaterialized { .. })
        ));
        assert!(engine.ipo_tree().is_some());
        assert!(engine.adaptive().is_none());
    }

    #[test]
    fn engine_is_send_and_sync() {
        // Compile-time assertion: one engine build must be shareable across threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SkylineEngine>();
        assert_send_sync::<AdaptiveSfs>();
        assert_send_sync::<QueryOutcome>();
        assert_send_sync::<SharedEngine>();
    }

    #[test]
    fn sfs_d_mutations_tombstone_and_append_without_rebuild() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let mut engine =
            SkylineEngine::build(data.clone(), template.clone(), EngineConfig::SfsD).unwrap();
        let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        assert_eq!(engine.epoch(), DatasetEpoch::INITIAL);

        // Delete skyline member e (id 4: the cheap M package): the answer must change.
        let before = engine.query(&pref).unwrap().skyline;
        assert!(before.contains(&4));
        let epoch = engine.delete_row(4).unwrap();
        assert_eq!(epoch.get(), 1);
        assert!(!engine.is_row_live(4));
        assert_eq!(engine.live_rows(), 5);
        let after = engine.query(&pref).unwrap().skyline;
        assert!(!after.contains(&4), "tombstoned rows must never be served");
        let ctx = DominanceContext::for_query(engine.dataset(), &template, &pref).unwrap();
        let live: Vec<PointId> = engine
            .dataset()
            .point_ids()
            .filter(|&p| engine.is_row_live(p))
            .collect();
        assert_eq!(after, bnl::skyline_of(&ctx, &live));

        // Insert a dominating row: it must appear in the next answer.
        let epoch = engine.insert_row(&[100.0, -9.0], &[2, 0]).unwrap();
        assert_eq!(epoch.get(), 2);
        assert_eq!(engine.dataset().len(), 7);
        let answer = engine.query(&pref).unwrap().skyline;
        assert!(answer.contains(&6));
    }

    #[test]
    fn query_at_rejects_stale_epochs() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let mut engine = SkylineEngine::build(data, template, EngineConfig::AdaptiveSfs).unwrap();
        let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        let mut scratch = EngineScratch::default();
        let epoch = engine.epoch();
        assert!(engine.query_at(&pref, epoch, &mut scratch).is_ok());
        assert!(engine.check_servable_at(&pref, epoch).is_ok());
        engine.insert_row(&[1.0, 1.0], &[0, 0]).unwrap();
        assert!(matches!(
            engine.query_at(&pref, epoch, &mut scratch),
            Err(SkylineError::EpochMismatch { .. })
        ));
        assert!(matches!(
            engine.check_servable_at(&pref, epoch),
            Err(SkylineError::EpochMismatch { .. })
        ));
        assert!(engine.query_at(&pref, engine.epoch(), &mut scratch).is_ok());
    }

    #[test]
    fn shared_engine_mutations_are_visible_to_every_clone() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let shared = SharedEngine::from(
            SkylineEngine::build(data, template, EngineConfig::Hybrid { top_k: 2 }).unwrap(),
        );
        let clone = shared.clone();
        let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        let before = shared.read().query(&pref).unwrap().skyline;
        let epoch = clone.write().insert_row(&[1.0, -9.0], &[2, 0]).unwrap();
        assert_eq!(epoch, shared.read().epoch());
        let after = shared.read().query(&pref).unwrap().skyline;
        assert_ne!(before, after, "clones must observe the mutation");
        assert!(after.contains(&6));
    }

    #[test]
    fn point_block_exists_exactly_for_dominance_scanning_configs() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        for (config, expects_block) in [
            (EngineConfig::SfsD, true),
            (EngineConfig::AdaptiveSfs, true),
            (EngineConfig::Hybrid { top_k: 2 }, true),
            (EngineConfig::IpoTree, false),
            (EngineConfig::IpoTreeTopK(2), false),
            (EngineConfig::BitmapIpoTree, false),
        ] {
            let engine = SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            assert_eq!(
                engine.point_block().is_some(),
                expects_block,
                "config {config:?}"
            );
            if let Some(block) = engine.point_block() {
                assert_eq!(block.len(), data.len());
            }
        }
        // Hybrid engines share one block between the engine and the aSFS fallback.
        let hybrid = SkylineEngine::build(
            data.clone(),
            template.clone(),
            EngineConfig::Hybrid { top_k: 2 },
        )
        .unwrap();
        assert!(Arc::ptr_eq(
            hybrid.point_block().unwrap(),
            hybrid.adaptive().unwrap().point_block()
        ));
    }

    #[test]
    fn accessors_expose_bound_state() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let engine =
            SkylineEngine::build(data.clone(), template, EngineConfig::AdaptiveSfs).unwrap();
        assert!(std::ptr::eq(engine.dataset(), &*data));
        assert!(Arc::ptr_eq(engine.dataset_arc(), &data));
        assert_eq!(engine.template().nominal_count(), 2);
        assert!(engine.adaptive().is_some());
        assert!(engine.ipo_tree().is_none());
    }
}
