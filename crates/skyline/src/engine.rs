//! A unified query engine over the paper's algorithms, including the hybrid strategy of §5.3.

use skyline_adaptive::{AdaptiveSfs, QueryScratch};
use skyline_core::algo::sfs;
use skyline_core::kernel::{CompiledRelation, PointBlock};
use skyline_core::score::ScoreFn;
use skyline_core::{Dataset, PointId, Preference, Result, Template};
use skyline_ipo::{BitmapIpoTree, IpoTree, IpoTreeBuilder};
use std::sync::Arc;

/// Which algorithm an engine instance materializes and uses to answer queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineConfig {
    /// No preprocessing; every query runs sort-first-skyline over the whole dataset
    /// (the paper's **SFS-D** baseline).
    SfsD,
    /// Adaptive SFS over the presorted template skyline (**SFS-A**).
    AdaptiveSfs,
    /// Full IPO tree (every nominal value materialized), set-based evaluation.
    IpoTree,
    /// IPO tree restricted to the `k` most frequent values per nominal dimension
    /// (**IPO Tree-10** uses `k = 10`). Queries touching other values are rejected.
    IpoTreeTopK(usize),
    /// Bitmap IPO tree (full materialization, bitwise evaluation).
    BitmapIpoTree,
    /// The recommendation of §5.3: an IPO tree over the `top_k` most frequent values for the
    /// popular queries, with Adaptive SFS as the fallback for everything else.
    Hybrid {
        /// Number of most-frequent values materialized per nominal dimension.
        top_k: usize,
    },
}

/// The algorithm that actually produced a query answer (interesting for the hybrid engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodUsed {
    /// Answered by the full-dataset SFS baseline.
    SfsD,
    /// Answered by Adaptive SFS.
    AdaptiveSfs,
    /// Answered by the (set-based or bitmap) IPO tree.
    IpoTree,
}

/// A query answer plus provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The skyline under the query preference, as sorted point ids.
    pub skyline: Vec<PointId>,
    /// Which algorithm produced it.
    pub method: MethodUsed,
}

/// A configured skyline query engine bound to a dataset and a template.
///
/// The dataset is held by shared ownership ([`Arc`]), which makes the engine `Send + Sync`:
/// build it once, wrap it in an `Arc`, and answer queries from as many threads as you like
/// (`query` takes `&self` and only reads). The `skyline-service` crate builds its concurrent,
/// cache-backed query service on exactly this property.
#[derive(Debug)]
pub struct SkylineEngine {
    data: Arc<Dataset>,
    /// Row-major interleaved copy of the dataset for the compiled dominance kernel; built
    /// once per engine and shared with the Adaptive SFS structure when there is one. `None`
    /// for pure IPO-tree configurations, whose query paths never run a dominance scan — the
    /// block would be an O(n·d) copy that is never read.
    block: Option<Arc<PointBlock>>,
    template: Template,
    config: EngineConfig,
    ipo: Option<IpoTree>,
    bitmap: Option<BitmapIpoTree>,
    asfs: Option<AdaptiveSfs>,
}

/// Reusable per-thread buffers for [`SkylineEngine::query_with_scratch`].
///
/// A worker thread serving many queries hands the same scratch to every call so the
/// per-query candidate and elimination buffers are reused instead of reallocated (the
/// `skyline-service` batch executor keeps one per worker).
#[derive(Debug, Default)]
pub struct EngineScratch {
    asfs: QueryScratch,
}

impl EngineScratch {
    /// Creates an empty scratch (equivalent to [`EngineScratch::default`]).
    pub fn new() -> Self {
        Self::default()
    }
}

impl SkylineEngine {
    /// Builds the engine, performing whatever preprocessing the configuration requires.
    ///
    /// Accepts either an owned [`Dataset`] or an [`Arc<Dataset>`]; pass the same `Arc` to
    /// several engines to share one copy of the data between them.
    pub fn build(
        data: impl Into<Arc<Dataset>>,
        template: Template,
        config: EngineConfig,
    ) -> Result<Self> {
        let data = data.into();
        let mut ipo = None;
        let mut bitmap = None;
        let mut asfs = None;
        // The point block is built exactly once per engine; configurations that carry an
        // Adaptive SFS structure share theirs instead of transposing the dataset twice.
        let mut block: Option<Arc<PointBlock>> = None;
        match config {
            EngineConfig::SfsD => {}
            EngineConfig::AdaptiveSfs => {
                let built = AdaptiveSfs::build(data.clone(), &template)?;
                block = Some(built.point_block().clone());
                asfs = Some(built);
            }
            EngineConfig::IpoTree => {
                ipo = Some(IpoTreeBuilder::new().build(&data, &template)?);
            }
            EngineConfig::IpoTreeTopK(k) => {
                ipo = Some(
                    IpoTreeBuilder::new()
                        .top_k_values(k)
                        .build(&data, &template)?,
                );
            }
            EngineConfig::BitmapIpoTree => {
                let tree = IpoTreeBuilder::new().build(&data, &template)?;
                bitmap = Some(BitmapIpoTree::from_tree(&tree, &data));
            }
            EngineConfig::Hybrid { top_k } => {
                let tree = IpoTreeBuilder::new()
                    .top_k_values(top_k)
                    .build(&data, &template)?;
                let shared = Arc::new(PointBlock::new(&data));
                asfs = Some(AdaptiveSfs::from_precomputed_with_block(
                    data.clone(),
                    shared.clone(),
                    template.clone(),
                    tree.skyline().to_vec(),
                )?);
                ipo = Some(tree);
                block = Some(shared);
            }
        }
        // SFS-D scans the whole dataset per query, so it needs the block too; the IPO-tree
        // configurations answer purely from materialized sets and skip the copy.
        if block.is_none() && config == EngineConfig::SfsD {
            block = Some(Arc::new(PointBlock::new(&data)));
        }
        Ok(Self {
            data,
            block,
            template,
            config,
            ipo,
            bitmap,
            asfs,
        })
    }

    /// The dataset the engine is bound to.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Shared handle to the dataset (cheap to clone; hand it to sibling engines or threads).
    pub fn dataset_arc(&self) -> &Arc<Dataset> {
        &self.data
    }

    /// The shared row-major point layout the compiled dominance kernel evaluates over.
    ///
    /// `None` for pure IPO-tree configurations, which answer queries from materialized sets
    /// and never run a dominance scan.
    pub fn point_block(&self) -> Option<&Arc<PointBlock>> {
        self.block.as_ref()
    }

    /// The template shared by all queries.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The materialized IPO tree, when the configuration has one.
    pub fn ipo_tree(&self) -> Option<&IpoTree> {
        self.ipo.as_ref()
    }

    /// The Adaptive SFS structure, when the configuration has one.
    pub fn adaptive(&self) -> Option<&AdaptiveSfs> {
        self.asfs.as_ref()
    }

    /// Errors exactly when [`SkylineEngine::query`] would reject `pref` without computing a
    /// skyline: schema validation, template refinement, and — for configurations whose query
    /// path rejects unmaterialized values — the materialization predicate.
    ///
    /// This is the engine-level servability policy in one place; the `skyline-service` result
    /// cache consults it before a lookup so that cache state can never change which inputs
    /// are accepted. The hybrid configuration needs no materialization check: it answers
    /// unmaterialized preferences via its Adaptive-SFS fallback.
    pub fn check_servable(&self, pref: &Preference) -> Result<()> {
        let schema = self.data.schema();
        pref.validate(schema)?;
        self.template.check_refinement(schema, pref)?;
        match self.config {
            EngineConfig::IpoTree | EngineConfig::IpoTreeTopK(_) => {
                let tree = self.ipo.as_ref().expect("built in build()");
                tree.require_materialized(schema, pref)
            }
            EngineConfig::BitmapIpoTree => {
                let tree = self.bitmap.as_ref().expect("built in build()");
                tree.require_materialized(schema, pref)
            }
            EngineConfig::SfsD | EngineConfig::AdaptiveSfs | EngineConfig::Hybrid { .. } => Ok(()),
        }
    }

    /// Answers an implicit-preference query.
    pub fn query(&self, pref: &Preference) -> Result<QueryOutcome> {
        let mut scratch = EngineScratch::default();
        self.query_with_scratch(pref, &mut scratch)
    }

    /// Like [`SkylineEngine::query`], reusing caller-owned scratch buffers across queries.
    ///
    /// Threads that answer many queries (the `skyline-service` worker pool) keep one
    /// [`EngineScratch`] each so the per-query merge and elimination buffers are recycled
    /// instead of reallocated.
    pub fn query_with_scratch(
        &self,
        pref: &Preference,
        scratch: &mut EngineScratch,
    ) -> Result<QueryOutcome> {
        match self.config {
            EngineConfig::SfsD => self.query_sfs_d(pref),
            EngineConfig::AdaptiveSfs => {
                let asfs = self.asfs.as_ref().expect("built in build()");
                Ok(QueryOutcome {
                    skyline: asfs.query_with_scratch(pref, &mut scratch.asfs)?,
                    method: MethodUsed::AdaptiveSfs,
                })
            }
            EngineConfig::IpoTree | EngineConfig::IpoTreeTopK(_) => {
                let tree = self.ipo.as_ref().expect("built in build()");
                Ok(QueryOutcome {
                    skyline: tree.query(&self.data, pref)?,
                    method: MethodUsed::IpoTree,
                })
            }
            EngineConfig::BitmapIpoTree => {
                let tree = self.bitmap.as_ref().expect("built in build()");
                Ok(QueryOutcome {
                    skyline: tree.query(&self.data, pref)?,
                    method: MethodUsed::IpoTree,
                })
            }
            EngineConfig::Hybrid { .. } => {
                // Same predicate the truncated tree's query rejection uses (Section 5.3):
                // popular (fully materialized) preferences go to the IPO tree, everything
                // else to Adaptive SFS.
                let tree = self.ipo.as_ref().expect("built in build()");
                if tree.materializes(pref) {
                    Ok(QueryOutcome {
                        skyline: tree.query(&self.data, pref)?,
                        method: MethodUsed::IpoTree,
                    })
                } else {
                    let asfs = self.asfs.as_ref().expect("built in build()");
                    Ok(QueryOutcome {
                        skyline: asfs.query_with_scratch(pref, &mut scratch.asfs)?,
                        method: MethodUsed::AdaptiveSfs,
                    })
                }
            }
        }
    }

    /// The SFS-D baseline path: score-sort the whole dataset with the query ranking, then run
    /// the elimination scan on the compiled dominance kernel (the engine's shared point block
    /// plus orders compiled for this query).
    fn query_sfs_d(&self, pref: &Preference) -> Result<QueryOutcome> {
        let block = self
            .block
            .as_ref()
            .expect("SfsD engines build their point block in build()");
        let dom =
            CompiledRelation::for_query(block.clone(), self.data.schema(), &self.template, pref)?;
        let score = ScoreFn::for_preference(self.data.schema(), pref)?;
        let all: Vec<PointId> = self.data.point_ids().collect();
        let sorted = score.sort_by_score(&self.data, &all);
        let mut skyline = sfs::scan_presorted(&dom, &sorted);
        skyline.sort_unstable();
        Ok(QueryOutcome {
            skyline,
            method: MethodUsed::SfsD,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::algo::bnl;
    use skyline_core::{
        DatasetBuilder, Dimension, DominanceContext, RowValue, Schema, SkylineError,
    };

    fn table3_data() -> Arc<Dataset> {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group, airline) in [
            (1600.0, 4.0, "T", "G"),
            (2400.0, 1.0, "T", "G"),
            (3000.0, 5.0, "H", "G"),
            (3600.0, 4.0, "H", "R"),
            (2400.0, 2.0, "M", "R"),
            (3000.0, 3.0, "M", "W"),
        ] {
            b.push_row([
                RowValue::Num(price),
                RowValue::Num(-class),
                group.into(),
                airline.into(),
            ])
            .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn every_engine_config_agrees_with_the_oracle() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let configs = [
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::IpoTree,
            EngineConfig::BitmapIpoTree,
            EngineConfig::Hybrid { top_k: 3 },
        ];
        let specs: Vec<Vec<(&str, &str)>> = vec![
            vec![("hotel-group", "M < *")],
            vec![("hotel-group", "M < H < *"), ("airline", "G < R < *")],
            vec![("airline", "W < *")],
            vec![],
        ];
        for config in configs {
            let engine = SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            assert_eq!(engine.config(), config);
            for spec in &specs {
                let pref = Preference::parse(&schema, spec.clone()).unwrap();
                let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
                let expected = bnl::skyline(&ctx);
                let outcome = engine.query(&pref).unwrap();
                assert_eq!(
                    outcome.skyline, expected,
                    "config {config:?}, spec {spec:?}"
                );
            }
        }
    }

    #[test]
    fn hybrid_falls_back_to_adaptive_sfs_for_unpopular_values() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let engine = SkylineEngine::build(
            data.clone(),
            template.clone(),
            EngineConfig::Hybrid { top_k: 1 },
        )
        .unwrap();
        // Airline G (id 0) is the most frequent: materialized → answered by the IPO tree.
        let popular = Preference::parse(&schema, [("airline", "G < *")]).unwrap();
        assert_eq!(engine.query(&popular).unwrap().method, MethodUsed::IpoTree);
        // Airline W is unpopular → falls back to Adaptive SFS, same answer as the oracle.
        let unpopular = Preference::parse(&schema, [("airline", "W < *")]).unwrap();
        let outcome = engine.query(&unpopular).unwrap();
        assert_eq!(outcome.method, MethodUsed::AdaptiveSfs);
        let ctx = DominanceContext::for_query(&data, &template, &unpopular).unwrap();
        assert_eq!(outcome.skyline, bnl::skyline(&ctx));
    }

    #[test]
    fn top_k_engine_rejects_unmaterialized_values() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let engine =
            SkylineEngine::build(data.clone(), template, EngineConfig::IpoTreeTopK(1)).unwrap();
        let unpopular = Preference::parse(&schema, [("airline", "W < *")]).unwrap();
        assert!(matches!(
            engine.query(&unpopular),
            Err(SkylineError::NotMaterialized { .. })
        ));
        assert!(engine.ipo_tree().is_some());
        assert!(engine.adaptive().is_none());
    }

    #[test]
    fn engine_is_send_and_sync() {
        // Compile-time assertion: one engine build must be shareable across threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SkylineEngine>();
        assert_send_sync::<AdaptiveSfs>();
        assert_send_sync::<QueryOutcome>();
    }

    #[test]
    fn point_block_exists_exactly_for_dominance_scanning_configs() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        for (config, expects_block) in [
            (EngineConfig::SfsD, true),
            (EngineConfig::AdaptiveSfs, true),
            (EngineConfig::Hybrid { top_k: 2 }, true),
            (EngineConfig::IpoTree, false),
            (EngineConfig::IpoTreeTopK(2), false),
            (EngineConfig::BitmapIpoTree, false),
        ] {
            let engine = SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            assert_eq!(
                engine.point_block().is_some(),
                expects_block,
                "config {config:?}"
            );
            if let Some(block) = engine.point_block() {
                assert_eq!(block.len(), data.len());
            }
        }
        // Hybrid engines share one block between the engine and the aSFS fallback.
        let hybrid = SkylineEngine::build(
            data.clone(),
            template.clone(),
            EngineConfig::Hybrid { top_k: 2 },
        )
        .unwrap();
        assert!(Arc::ptr_eq(
            hybrid.point_block().unwrap(),
            hybrid.adaptive().unwrap().point_block()
        ));
    }

    #[test]
    fn accessors_expose_bound_state() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let engine =
            SkylineEngine::build(data.clone(), template, EngineConfig::AdaptiveSfs).unwrap();
        assert!(std::ptr::eq(engine.dataset(), &*data));
        assert!(Arc::ptr_eq(engine.dataset_arc(), &data));
        assert_eq!(engine.template().nominal_count(), 2);
        assert!(engine.adaptive().is_some());
        assert!(engine.ipo_tree().is_none());
    }
}
