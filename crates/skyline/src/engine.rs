//! A unified query engine over the paper's algorithms, including the hybrid strategy of §5.3,
//! a dynamic-dataset mutation path (epoch-tracked inserts and logical deletes), and a
//! **generational lifecycle**: the serving state lives in an immutable [`Generation`]
//! snapshot, and a rebuild — physical compaction with row-id remapping plus IPO
//! re-materialization — constructs the *next* generation off the live rows without blocking
//! readers, replays mutations that arrived mid-build, and swaps it in atomically.

use skyline_adaptive::{AdaptiveSfs, MaintenanceStats, ProgressiveScan, QueryScratch};
use skyline_core::algo::sfs;
use skyline_core::kernel::{CompiledRelation, DatasetEpoch, DenseWindow, PointBlock, RowIdRemap};
use skyline_core::score::ScoreFn;
use skyline_core::{
    Dataset, Deadline, Dominance, PointId, Preference, Result, SkylineError, Template, ValueId,
    DEADLINE_CHECK_INTERVAL,
};
use skyline_ipo::{BitmapIpoTree, IpoTree, IpoTreeBuilder};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Which algorithm an engine instance materializes and uses to answer queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineConfig {
    /// No preprocessing; every query runs sort-first-skyline over the whole dataset
    /// (the paper's **SFS-D** baseline).
    SfsD,
    /// Adaptive SFS over the presorted template skyline (**SFS-A**).
    AdaptiveSfs,
    /// Full IPO tree (every nominal value materialized), set-based evaluation.
    IpoTree,
    /// IPO tree restricted to the `k` most frequent values per nominal dimension
    /// (**IPO Tree-10** uses `k = 10`). Queries touching other values are rejected.
    IpoTreeTopK(usize),
    /// Bitmap IPO tree (full materialization, bitwise evaluation).
    BitmapIpoTree,
    /// The recommendation of §5.3: an IPO tree over the `top_k` most frequent values for the
    /// popular queries, with Adaptive SFS as the fallback for everything else.
    Hybrid {
        /// Number of most-frequent values materialized per nominal dimension.
        top_k: usize,
    },
}

/// The algorithm that actually produced a query answer (interesting for the hybrid engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodUsed {
    /// Answered by the full-dataset SFS baseline.
    SfsD,
    /// Answered by Adaptive SFS.
    AdaptiveSfs,
    /// Answered by the (set-based or bitmap) IPO tree.
    IpoTree,
}

/// A query answer plus provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The skyline under the query preference, as sorted point ids.
    pub skyline: Vec<PointId>,
    /// Which algorithm produced it.
    pub method: MethodUsed,
}

/// One immutable serving snapshot of an engine: the dataset/block pair plus whatever derived
/// structures the configuration materializes.
///
/// Queries only ever read a generation; mutations apply to the *current* generation in place
/// (epoch-bumped appends and tombstones), and the background lifecycle builds the **next**
/// generation — physically compacted, renumbered, re-materialized — off the live rows, then
/// swaps it in atomically under the engine's write lock. The generation [`Generation::id`] is
/// a monotonic counter (0 for the generation [`SkylineEngine::build`] creates, +1 per
/// installed rebuild) that lets a finished build detect that the engine has moved on.
#[derive(Debug, Clone)]
pub struct Generation {
    /// Monotonic generation number.
    pub(crate) id: u64,
    /// Dataset handle; `None` when an Adaptive SFS structure owns the data (the
    /// [`EngineConfig::AdaptiveSfs`] and [`EngineConfig::Hybrid`] configurations), so mutable
    /// state has exactly one owner and incremental updates never copy it.
    pub(crate) data: Option<Arc<Dataset>>,
    /// Row-major interleaved copy of the dataset for the compiled dominance kernel. `Some`
    /// only for [`EngineConfig::SfsD`]: Adaptive-SFS configurations expose their structure's
    /// block, and pure IPO-tree configurations never run a dominance scan.
    pub(crate) block: Option<Arc<PointBlock>>,
    /// Shared so a rebuild snapshot can carry the tree's materialization policy without
    /// deep-copying the node arena under the engine's write lock.
    pub(crate) ipo: Option<Arc<IpoTree>>,
    pub(crate) bitmap: Option<BitmapIpoTree>,
    pub(crate) asfs: Option<AdaptiveSfs>,
    /// Epoch the materialized IPO structures were built at; when the dataset has moved past
    /// it, the hybrid configuration stops consulting its (stale) tree.
    pub(crate) tree_epoch: DatasetEpoch,
}

impl Generation {
    /// The generation's monotonic sequence number.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The generation's mutation epoch (from its point block).
    pub fn epoch(&self) -> DatasetEpoch {
        self.point_block()
            .map(|b| b.epoch())
            .unwrap_or(DatasetEpoch::INITIAL)
    }

    /// Epoch the generation's IPO structures were materialized at.
    pub fn tree_epoch(&self) -> DatasetEpoch {
        self.tree_epoch
    }

    /// The shared point layout, when the configuration runs dominance scans.
    pub fn point_block(&self) -> Option<&Arc<PointBlock>> {
        match &self.asfs {
            Some(asfs) => Some(asfs.point_block()),
            None => self.block.as_ref(),
        }
    }

    fn dataset_arc(&self) -> &Arc<Dataset> {
        match &self.asfs {
            Some(asfs) => asfs.dataset_arc(),
            None => self.data.as_ref().expect("set at construction"),
        }
    }

    /// Applies one insert to this generation, returning the new row id.
    fn apply_insert(&mut self, numeric: &[f64], nominal: &[ValueId]) -> Result<PointId> {
        if let Some(asfs) = &mut self.asfs {
            asfs.insert_row(numeric, nominal)
        } else {
            let data = self.data.as_mut().expect("mutable configs hold data");
            Arc::make_mut(data).push_row_ids(numeric, nominal)?;
            let block = self.block.as_mut().expect("SfsD builds its block");
            Arc::make_mut(block).append_row(numeric, nominal)
        }
    }

    /// Applies one logical delete; `true` when the row was live (and the epoch bumped).
    fn apply_delete(&mut self, p: PointId) -> Result<bool> {
        if let Some(asfs) = &mut self.asfs {
            asfs.delete_row(p)
        } else {
            let block = self.block.as_mut().expect("SfsD builds its block");
            Arc::make_mut(block).tombstone(p)
        }
    }
}

/// The row-id translation published by a generation swap, bridging the epochs on either side.
///
/// Compaction renumbers rows, so every id minted before the swap is stale afterwards. Callers
/// holding old ids — result caches, external row handles — translate them through
/// [`GenerationRemap::remap`] **iff** their artifact is tagged with exactly
/// [`GenerationRemap::from`] (the engine epoch right before the swap): at that epoch the old
/// ids were current, so the translation is lossless. Artifacts from earlier epochs predate
/// mutations the remap knows nothing about and must be discarded as usual.
#[derive(Debug, Clone)]
pub struct GenerationRemap {
    /// Old row ids → new row ids (order-preserving; reclaimed rows map to `None`).
    pub remap: Arc<RowIdRemap>,
    /// The engine epoch immediately before the swap (the last epoch of the old id space).
    pub from: DatasetEpoch,
    /// The installed generation's epoch (strictly greater than `from`).
    pub to: DatasetEpoch,
}

/// An epoch-bumping mutation recorded while a rebuild is in flight, replayed onto the next
/// generation before the swap.
#[derive(Debug, Clone)]
enum LoggedMutation {
    Insert {
        numeric: Vec<f64>,
        nominal: Vec<ValueId>,
    },
    /// Row id in the **pre-swap** id space (translated through the remap at replay time).
    Delete { row: PointId },
}

/// The armed replay log of an in-flight rebuild: the epoch the snapshot was taken at plus
/// every epoch-bumping mutation applied since. A pending generation is only installable when
/// it was built from exactly this snapshot — the log covers nothing earlier.
#[derive(Debug, Clone)]
pub(crate) struct ReplayLog {
    /// Engine epoch when [`SkylineEngine::begin_rebuild`] armed the log (the snapshot epoch).
    from_epoch: DatasetEpoch,
    mutations: Vec<LoggedMutation>,
}

/// The cheap, immutable state a rebuild needs, captured under the engine's write lock by
/// [`SkylineEngine::begin_rebuild`]. Everything here is an `Arc` clone or a small copy, so the
/// lock is held for microseconds; the expensive work happens in
/// [`GenerationSnapshot::build_next`] with no lock held at all.
#[derive(Debug, Clone)]
pub struct GenerationSnapshot {
    template: Template,
    config: EngineConfig,
    data: Arc<Dataset>,
    block: Arc<PointBlock>,
    /// The current tree (for its materialization policy), when the configuration has one.
    tree: Option<Arc<IpoTree>>,
    epoch: DatasetEpoch,
    generation_id: u64,
}

impl GenerationSnapshot {
    /// The epoch the snapshot was taken at.
    pub fn epoch(&self) -> DatasetEpoch {
        self.epoch
    }

    /// The id of the generation the snapshot was taken from.
    pub fn generation_id(&self) -> u64 {
        self.generation_id
    }

    /// Builds the next generation off the snapshot's live rows: a physically compacted
    /// dataset/block pair (dead rows dropped, survivors renumbered, epoch moved past the
    /// snapshot's), the Adaptive-SFS structure rebased through the parallel build path, and —
    /// for the hybrid configuration — the IPO tree re-materialized so tree-served queries
    /// come back after the swap.
    ///
    /// Runs with **no engine lock held**; concurrent readers keep serving the old generation
    /// throughout. Hand the result to [`SkylineEngine::install_generation`] under the write
    /// lock to swap it in.
    pub fn build_next(&self) -> Result<PendingGeneration> {
        let (block, remap) = self.block.compacted();
        let data = Arc::new(self.data.retained(remap.kept_old_ids()));
        let block = Arc::new(block);
        let tree_epoch = block.epoch();
        let generation = match self.config {
            EngineConfig::SfsD => Generation {
                id: self.generation_id,
                data: Some(data),
                block: Some(block),
                ipo: None,
                bitmap: None,
                asfs: None,
                tree_epoch,
            },
            EngineConfig::AdaptiveSfs => Generation {
                id: self.generation_id,
                data: None,
                block: None,
                ipo: None,
                bitmap: None,
                asfs: Some(AdaptiveSfs::rebased(data, block, &self.template)?),
                tree_epoch,
            },
            EngineConfig::Hybrid { .. } => {
                let old_tree = self.tree.as_ref().expect("hybrid engines carry a tree");
                let tree = old_tree.rebuilt_for(&data, &self.template)?;
                let asfs = AdaptiveSfs::from_precomputed_with_block(
                    data,
                    block,
                    self.template.clone(),
                    tree.skyline().to_vec(),
                )?;
                Generation {
                    id: self.generation_id,
                    data: None,
                    block: None,
                    ipo: Some(Arc::new(tree)),
                    bitmap: None,
                    asfs: Some(asfs),
                    tree_epoch,
                }
            }
            EngineConfig::IpoTree | EngineConfig::IpoTreeTopK(_) | EngineConfig::BitmapIpoTree => {
                return Err(SkylineError::InvalidArgument(
                    "frozen configurations have no generational lifecycle".into(),
                ))
            }
        };
        Ok(PendingGeneration {
            generation,
            remap,
            source_epoch: self.epoch,
            source_generation: self.generation_id,
        })
    }
}

/// A fully built next generation, waiting to be swapped in by
/// [`SkylineEngine::install_generation`].
#[derive(Debug)]
pub struct PendingGeneration {
    generation: Generation,
    remap: RowIdRemap,
    source_epoch: DatasetEpoch,
    source_generation: u64,
}

impl PendingGeneration {
    /// Number of tombstoned rows the compaction physically reclaimed.
    pub fn reclaimed(&self) -> usize {
        self.remap.reclaimed()
    }

    /// The epoch of the snapshot this generation was built from.
    pub fn source_epoch(&self) -> DatasetEpoch {
        self.source_epoch
    }
}

/// A configured skyline query engine bound to a dataset and a template.
///
/// The dataset is held by shared ownership ([`Arc`]), which makes the engine `Send + Sync`:
/// build it once, wrap it in an `Arc`, and answer queries from as many threads as you like
/// (`query` takes `&self` and only reads). The `skyline-service` crate builds its concurrent,
/// cache-backed query service on exactly this property.
///
/// # Dynamic datasets
///
/// [`SkylineEngine::insert_row`] and [`SkylineEngine::delete_row`] mutate the bound dataset in
/// place (`&mut self`) and return the new [`DatasetEpoch`]; every answered query is implicitly
/// relative to the epoch it ran at, and [`SkylineEngine::query_at`] rejects a stale
/// expectation with [`SkylineError::EpochMismatch`]. Configurations that answer purely from
/// materialized IPO structures ([`EngineConfig::IpoTree`], [`EngineConfig::IpoTreeTopK`],
/// [`EngineConfig::BitmapIpoTree`]) are frozen and reject mutations — rebuild them instead.
/// The hybrid configuration stays fully servable: after a mutation its truncated tree is
/// stale, so every query routes to the incrementally maintained Adaptive-SFS side until a
/// generation rebuild re-materializes the tree. To share one mutable engine between threads,
/// wrap it in a [`SharedEngine`].
///
/// # Generational lifecycle
///
/// The serving state lives in a [`Generation`]. Sustained write workloads accumulate
/// tombstoned rows (memory) and — for the hybrid — a stale tree (latency); the lifecycle
/// fixes both without ever blocking readers on a build:
///
/// 1. [`SkylineEngine::begin_rebuild`] (write lock, microseconds) captures a
///    [`GenerationSnapshot`] and starts recording epoch-bumping mutations in a replay log;
/// 2. [`GenerationSnapshot::build_next`] (**no lock**) compacts, renumbers and
///    re-materializes the next generation;
/// 3. [`SkylineEngine::install_generation`] (write lock) replays the logged mutations onto
///    the new generation, swaps it in atomically, and publishes a [`GenerationRemap`] so
///    callers can translate stale row ids.
///
/// [`SharedEngine::rebuild_now`] packages the three steps for synchronous use; the
/// [`crate::maintenance::MaintenanceWorker`] drives them from a background thread under a
/// [`crate::maintenance::MaintenancePolicy`].
#[derive(Debug, Clone)]
pub struct SkylineEngine {
    pub(crate) template: Template,
    pub(crate) config: EngineConfig,
    pub(crate) generation: Generation,
    /// `Some` while a rebuild is in flight: every epoch-bumping mutation is recorded for
    /// replay onto the next generation before the swap.
    pub(crate) replay_log: Option<ReplayLog>,
    /// Epoch-bumping mutations applied since the last installed generation (or the build) —
    /// one of the two quantities maintenance policies watch.
    pub(crate) mutations_since_rebuild: u64,
    /// Counters of structures replaced by past generation swaps, plus the engine-level
    /// `rebuilds`/`reclaimed_rows` — merged with the live structure's counters by
    /// [`SkylineEngine::maintenance_stats`].
    pub(crate) carried_stats: MaintenanceStats,
    /// Mutation counters for [`EngineConfig::SfsD`], which has no maintained structure of its
    /// own to count them.
    pub(crate) sfsd_stats: MaintenanceStats,
    /// The translations published by recent generation swaps, oldest first, bounded to
    /// [`REMAP_CHAIN_LIMIT`] entries. Caches compose consecutive entries to translate
    /// results that are more than one swap behind.
    pub(crate) remap_history: Vec<GenerationRemap>,
}

/// How many published [`GenerationRemap`]s an engine retains for cache translation.
///
/// Back-to-back rebuilds (common once a shared build pool drives many shards) publish
/// several remaps between two lookups of the same cached result; a cache that can only
/// translate across the *latest* swap silently drops everything one swap behind. Eight
/// generations of history cover any realistic rebuild cadence between cache touches while
/// keeping the retained `RowIdRemap`s bounded.
pub const REMAP_CHAIN_LIMIT: usize = 8;

/// A skyline engine shared between readers and writers: `Arc<RwLock<SkylineEngine>>` with the
/// lock handling folded in.
///
/// Queries take the read lock (many concurrent readers); [`SkylineEngine::insert_row`] /
/// [`SkylineEngine::delete_row`] take the write lock through [`SharedEngine::write`] and
/// update the engine in place. Cloning a `SharedEngine` is one `Arc` clone — every clone sees
/// the same engine and the same mutations. Do not hold a guard across calls that re-lock the
/// same `SharedEngine` (the usual read-vs-write deadlock rules of [`RwLock`] apply).
#[derive(Debug, Clone)]
pub struct SharedEngine {
    inner: Arc<RwLock<SkylineEngine>>,
}

impl SharedEngine {
    /// Wraps an engine for shared mutable access.
    pub fn new(engine: SkylineEngine) -> Self {
        Self {
            inner: Arc::new(RwLock::new(engine)),
        }
    }

    /// Read access (shared, concurrent).
    ///
    /// A poisoned lock is recovered rather than propagated: only a *writer* panicking
    /// mid-mutation poisons an `RwLock`, and the engine's mutation paths keep the structure
    /// consistent at every `?` / panic point (fault-injection build panics fire before any
    /// state is touched; a torn rebuild is healed by [`SkylineEngine::abort_rebuild`]).
    /// Recovering keeps a quarantined shard's epoch readable so the healthy rest of a
    /// sharded service can keep answering.
    pub fn read(&self) -> RwLockReadGuard<'_, SkylineEngine> {
        self.inner.read().unwrap_or_else(|poisoned| {
            self.inner.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Write access (exclusive) for mutations. Recovers a poisoned lock — see
    /// [`SharedEngine::read`] for why that is sound here.
    pub fn write(&self) -> RwLockWriteGuard<'_, SkylineEngine> {
        self.inner.write().unwrap_or_else(|poisoned| {
            self.inner.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Runs one full generation rebuild synchronously: snapshot under the write lock
    /// (microseconds), [`GenerationSnapshot::build_next`] with **no lock held** — concurrent
    /// readers keep serving the old generation, and mutations keep landing (they are
    /// replayed) — then the atomic swap under the write lock. Returns the published
    /// [`GenerationRemap`].
    ///
    /// This is the same three-step cycle the background
    /// [`crate::maintenance::MaintenanceWorker`] drives; call it directly for deterministic
    /// rebuilds in tests or batch jobs. Fails on frozen configurations and when another
    /// rebuild is already in flight.
    pub fn rebuild_now(&self) -> Result<GenerationRemap> {
        let snapshot = self.write().begin_rebuild()?;
        let pending = match snapshot.build_next() {
            Ok(pending) => pending,
            Err(e) => {
                self.write().abort_rebuild();
                return Err(e);
            }
        };
        self.write().install_generation(pending)
    }
}

impl From<SkylineEngine> for SharedEngine {
    fn from(engine: SkylineEngine) -> Self {
        Self::new(engine)
    }
}

/// Reusable per-thread buffers for [`SkylineEngine::query_with_scratch`].
///
/// A worker thread serving many queries hands the same scratch to every call so the
/// per-query candidate and elimination buffers are reused instead of reallocated (the
/// `skyline-service` batch executor keeps one per worker).
#[derive(Debug, Default)]
pub struct EngineScratch {
    asfs: QueryScratch,
}

impl EngineScratch {
    /// Creates an empty scratch (equivalent to [`EngineScratch::default`]).
    pub fn new() -> Self {
        Self::default()
    }
}

impl SkylineEngine {
    /// Builds the engine, performing whatever preprocessing the configuration requires.
    ///
    /// Accepts either an owned [`Dataset`] or an [`Arc<Dataset>`]; pass the same `Arc` to
    /// several engines to share one copy of the data between them.
    pub fn build(
        data: impl Into<Arc<Dataset>>,
        template: Template,
        config: EngineConfig,
    ) -> Result<Self> {
        let data = data.into();
        let mut ipo = None;
        let mut bitmap = None;
        let mut asfs = None;
        // The point block is built exactly once per engine; configurations that carry an
        // Adaptive SFS structure let it own the block (the engine exposes it by delegation),
        // so mutations have a single owner and never transpose the dataset twice.
        let mut block: Option<Arc<PointBlock>> = None;
        let mut owned_data = None;
        match config {
            EngineConfig::SfsD => {
                block = Some(Arc::new(PointBlock::new(&data)));
                owned_data = Some(data);
            }
            EngineConfig::AdaptiveSfs => {
                asfs = Some(AdaptiveSfs::build(data, &template)?);
            }
            EngineConfig::IpoTree => {
                ipo = Some(IpoTreeBuilder::new().build(&data, &template)?);
                owned_data = Some(data);
            }
            EngineConfig::IpoTreeTopK(k) => {
                ipo = Some(
                    IpoTreeBuilder::new()
                        .top_k_values(k)
                        .build(&data, &template)?,
                );
                owned_data = Some(data);
            }
            EngineConfig::BitmapIpoTree => {
                let tree = IpoTreeBuilder::new().build(&data, &template)?;
                bitmap = Some(BitmapIpoTree::from_tree(&tree, &data));
                owned_data = Some(data);
            }
            EngineConfig::Hybrid { top_k } => {
                let tree = IpoTreeBuilder::new()
                    .top_k_values(top_k)
                    .build(&data, &template)?;
                let shared = Arc::new(PointBlock::new(&data));
                asfs = Some(AdaptiveSfs::from_precomputed_with_block(
                    data,
                    shared,
                    template.clone(),
                    tree.skyline().to_vec(),
                )?);
                ipo = Some(tree);
            }
        }
        Ok(Self {
            template,
            config,
            generation: Generation {
                id: 0,
                data: owned_data,
                block,
                ipo: ipo.map(Arc::new),
                bitmap,
                asfs,
                tree_epoch: DatasetEpoch::INITIAL,
            },
            replay_log: None,
            mutations_since_rebuild: 0,
            carried_stats: MaintenanceStats::default(),
            sfsd_stats: MaintenanceStats::default(),
            remap_history: Vec::new(),
        })
    }

    /// The dataset the engine is bound to.
    pub fn dataset(&self) -> &Dataset {
        self.dataset_arc()
    }

    /// Shared handle to the dataset (cheap to clone; hand it to sibling engines or threads).
    pub fn dataset_arc(&self) -> &Arc<Dataset> {
        self.generation.dataset_arc()
    }

    /// The serving generation (snapshot introspection: id, epochs, block).
    pub fn generation(&self) -> &Generation {
        &self.generation
    }

    /// The shared row-major point layout the compiled dominance kernel evaluates over.
    ///
    /// `None` for pure IPO-tree configurations, which answer queries from materialized sets
    /// and never run a dominance scan.
    pub fn point_block(&self) -> Option<&Arc<PointBlock>> {
        self.generation.point_block()
    }

    /// The engine's current mutation epoch (bumped by every insert, every live delete, and
    /// every generation swap).
    pub fn epoch(&self) -> DatasetEpoch {
        self.generation.epoch()
    }

    /// Number of live (non-deleted) rows the engine serves.
    pub fn live_rows(&self) -> usize {
        self.point_block()
            .map(|b| b.live_count())
            .unwrap_or_else(|| self.dataset().len())
    }

    /// True when row `p` exists and has not been logically deleted.
    pub fn is_row_live(&self, p: PointId) -> bool {
        self.point_block()
            .map(|b| b.is_live(p))
            .unwrap_or_else(|| (p as usize) < self.dataset().len())
    }

    /// The template shared by all queries.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The materialized IPO tree, when the configuration has one.
    pub fn ipo_tree(&self) -> Option<&IpoTree> {
        self.generation.ipo.as_deref()
    }

    /// The Adaptive SFS structure, when the configuration has one.
    pub fn adaptive(&self) -> Option<&AdaptiveSfs> {
        self.generation.asfs.as_ref()
    }

    /// Mutable access to the Adaptive SFS structure (e.g. to trigger an explicit
    /// [`AdaptiveSfs::compact`]); requires a mutable configuration.
    pub fn adaptive_mut(&mut self) -> Option<&mut AdaptiveSfs> {
        self.generation.asfs.as_mut()
    }

    /// Errors exactly when [`SkylineEngine::query`] would reject `pref` without computing a
    /// skyline: schema validation, template refinement, and — for configurations whose query
    /// path rejects unmaterialized values — the materialization predicate.
    ///
    /// This is the engine-level servability policy in one place; the `skyline-service` result
    /// cache consults it before a lookup so that cache state can never change which inputs
    /// are accepted. The hybrid configuration needs no materialization check: it answers
    /// unmaterialized preferences via its Adaptive-SFS fallback.
    pub fn check_servable(&self, pref: &Preference) -> Result<()> {
        let schema = self.dataset().schema();
        pref.validate(schema)?;
        self.template.check_refinement(schema, pref)?;
        match self.config {
            EngineConfig::IpoTree | EngineConfig::IpoTreeTopK(_) => {
                let tree = self.generation.ipo.as_ref().expect("built in build()");
                tree.require_materialized(schema, pref)
            }
            EngineConfig::BitmapIpoTree => {
                let tree = self.generation.bitmap.as_ref().expect("built in build()");
                tree.require_materialized(schema, pref)
            }
            EngineConfig::SfsD | EngineConfig::AdaptiveSfs | EngineConfig::Hybrid { .. } => Ok(()),
        }
    }

    /// Like [`SkylineEngine::check_servable`], additionally failing with
    /// [`SkylineError::EpochMismatch`] when the engine has moved past `epoch` — the check a
    /// caller holding epoch-tagged derived state (a result cache, a materialized view) runs
    /// before trusting that state.
    pub fn check_servable_at(&self, pref: &Preference, epoch: DatasetEpoch) -> Result<()> {
        self.ensure_epoch(epoch)?;
        self.check_servable(pref)
    }

    /// True when this configuration supports [`SkylineEngine::insert_row`] /
    /// [`SkylineEngine::delete_row`]. Pure IPO-tree configurations are frozen.
    pub fn supports_mutation(&self) -> bool {
        matches!(
            self.config,
            EngineConfig::SfsD | EngineConfig::AdaptiveSfs | EngineConfig::Hybrid { .. }
        )
    }

    /// Inserts a row (numeric values in numeric-index order, nominal value ids in
    /// nominal-index order) and returns the new [`DatasetEpoch`].
    ///
    /// Adaptive-SFS-backed configurations update their skyline structures incrementally (one
    /// dominance check against the current skyline plus `O(log n)` list updates); SFS-D only
    /// appends to its data and point block, since it scans per query anyway. Pure IPO-tree
    /// configurations reject mutations. If other `Arc` handles to the dataset are still held
    /// outside the engine, the first mutation copies the data once so those handles keep an
    /// immutable snapshot; afterwards the engine owns its copy and mutates in place.
    pub fn insert_row(&mut self, numeric: &[f64], nominal: &[ValueId]) -> Result<DatasetEpoch> {
        self.require_mutable()?;
        self.generation.apply_insert(numeric, nominal)?;
        if self.generation.asfs.is_none() {
            self.sfsd_stats.inserts += 1;
        }
        self.mutations_since_rebuild += 1;
        if let Some(log) = &mut self.replay_log {
            log.mutations.push(LoggedMutation::Insert {
                numeric: numeric.to_vec(),
                nominal: nominal.to_vec(),
            });
        }
        Ok(self.epoch())
    }

    /// Logically deletes a row and returns the new [`DatasetEpoch`].
    ///
    /// Deleting an already-deleted row is a no-op that returns the current epoch unchanged;
    /// rows that never existed are an error. See [`SkylineEngine::insert_row`] for the
    /// configuration and sharing rules.
    pub fn delete_row(&mut self, p: PointId) -> Result<DatasetEpoch> {
        self.require_mutable()?;
        let was_live = self.generation.apply_delete(p)?;
        if was_live {
            if self.generation.asfs.is_none() {
                self.sfsd_stats.deletes += 1;
            }
            self.mutations_since_rebuild += 1;
            if let Some(log) = &mut self.replay_log {
                log.mutations.push(LoggedMutation::Delete { row: p });
            }
        }
        Ok(self.epoch())
    }

    /// Epoch-bumping mutations applied since the last generation swap (or the build).
    pub fn mutations_since_rebuild(&self) -> u64 {
        self.mutations_since_rebuild
    }

    /// Tombstoned rows still physically occupying the engine's block (0 for frozen configs).
    pub fn dead_rows(&self) -> usize {
        self.point_block().map(|b| b.dead_count()).unwrap_or(0)
    }

    /// The translation published by the most recent generation swap, when one has happened.
    pub fn last_remap(&self) -> Option<&GenerationRemap> {
        self.remap_history.last()
    }

    /// The bounded chain of recent generation-swap translations, oldest first (at most
    /// [`REMAP_CHAIN_LIMIT`] entries). Consecutive entries compose — `chain[i].to ==
    /// chain[i + 1].from` whenever no mutation landed between the two swaps — letting a
    /// cache translate results that are several swaps behind the serving generation.
    pub fn remap_chain(&self) -> &[GenerationRemap] {
        &self.remap_history
    }

    /// True while a [`SkylineEngine::begin_rebuild`] snapshot is outstanding (mutations are
    /// being recorded for replay).
    pub fn rebuild_in_flight(&self) -> bool {
        self.replay_log.is_some()
    }

    /// Maintenance counters across the engine's whole lifetime: the live structure's
    /// incremental-maintenance counters plus everything carried over from generations
    /// replaced by past swaps, including [`MaintenanceStats::rebuilds`] (installed swaps) and
    /// [`MaintenanceStats::reclaimed_rows`] (rows physically reclaimed by compactions).
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        let live = match &self.generation.asfs {
            Some(asfs) => asfs.maintenance_stats(),
            None => self.sfsd_stats,
        };
        self.carried_stats.merged(live)
    }

    /// True when `pref` would currently be answered from a materialized IPO tree: always for
    /// the frozen tree configurations (when they accept it at all), and for the hybrid exactly
    /// when its tree is current (no mutation since materialization) and materializes every
    /// listed value. This is the introspection hook tests and monitors use to observe a
    /// mutated hybrid recovering tree-served queries after a generation rebuild.
    pub fn serves_from_tree(&self, pref: &Preference) -> bool {
        match self.config {
            EngineConfig::IpoTree | EngineConfig::IpoTreeTopK(_) | EngineConfig::BitmapIpoTree => {
                true
            }
            EngineConfig::Hybrid { .. } => {
                let tree = self.generation.ipo.as_ref().expect("built in build()");
                self.epoch() == self.generation.tree_epoch && tree.materializes(pref)
            }
            EngineConfig::SfsD | EngineConfig::AdaptiveSfs => false,
        }
    }

    /// Starts a generation rebuild: captures a cheap [`GenerationSnapshot`] and arms the
    /// replay log, so every epoch-bumping mutation from here on is recorded and replayed onto
    /// the next generation before [`SkylineEngine::install_generation`] swaps it in.
    ///
    /// Call under the write lock (the snapshot is a handful of `Arc` clones — microseconds),
    /// then run [`GenerationSnapshot::build_next`] with **no lock held**. Fails on frozen
    /// configurations and when a rebuild is already in flight; a build that is abandoned
    /// without installing must call [`SkylineEngine::abort_rebuild`] to disarm the log.
    pub fn begin_rebuild(&mut self) -> Result<GenerationSnapshot> {
        self.require_mutable()?;
        if self.replay_log.is_some() {
            return Err(SkylineError::InvalidArgument(
                "a generation rebuild is already in flight".into(),
            ));
        }
        let snapshot = GenerationSnapshot {
            template: self.template.clone(),
            config: self.config,
            data: self.dataset_arc().clone(),
            block: self
                .point_block()
                .expect("mutable configs build a block")
                .clone(),
            tree: self.generation.ipo.clone(),
            epoch: self.epoch(),
            generation_id: self.generation.id,
        };
        self.replay_log = Some(ReplayLog {
            from_epoch: snapshot.epoch,
            mutations: Vec::new(),
        });
        Ok(snapshot)
    }

    /// Abandons an in-flight rebuild: disarms the replay log without swapping anything.
    pub fn abort_rebuild(&mut self) {
        self.replay_log = None;
    }

    /// Atomically swaps in a built generation (call under the write lock): replays the
    /// mutations that arrived while the build ran — translating deleted row ids through the
    /// remap — installs the new generation, and publishes the [`GenerationRemap`] bridging
    /// the old id space to the new one.
    ///
    /// The installed epoch is strictly greater than every epoch the old generation ever
    /// served, so epoch-tagged artifacts built against old row ids can never be misread
    /// against the renumbered block. Fails — leaving the old generation serving — when the
    /// pending generation is stale (the engine was swapped by someone else in between) or no
    /// rebuild was begun.
    pub fn install_generation(&mut self, pending: PendingGeneration) -> Result<GenerationRemap> {
        // Validate BEFORE consuming the log: a rejected stale pending (e.g. one built before
        // an abort, or for another generation) must leave the legitimately armed rebuild —
        // and its mutation recording — intact.
        {
            let Some(log) = self.replay_log.as_ref() else {
                return Err(SkylineError::InvalidArgument(
                    "no generation rebuild in flight".into(),
                ));
            };
            if pending.source_generation != self.generation.id
                || pending.source_epoch != log.from_epoch
            {
                return Err(SkylineError::InvalidArgument(format!(
                    "pending generation was built from generation {} at {} but the armed \
                     rebuild snapshotted generation {} at {}",
                    pending.source_generation,
                    pending.source_epoch,
                    self.generation.id,
                    log.from_epoch
                )));
            }
        }
        let log = self.replay_log.take().expect("validated above");
        let mut generation = pending.generation;
        let mut remap = pending.remap;
        // Logical mutations replayed here were already counted by the old generation's
        // structure when they were applied live; the new structure counts them a second time
        // during the replay. Track them so the merge below deducts the duplicates (pure work
        // counters like `resurface_candidates` keep both sides — both scans really ran).
        let mut replayed_inserts = 0u64;
        let mut replayed_deletes = 0u64;
        for mutation in log.mutations {
            match mutation {
                LoggedMutation::Insert { numeric, nominal } => {
                    let new = generation.apply_insert(&numeric, &nominal)?;
                    remap.push_appended(new);
                    replayed_inserts += 1;
                }
                LoggedMutation::Delete { row } => {
                    // Logged deletes target rows live at snapshot time or appended after it,
                    // so the translation cannot fail; skip defensively if it ever does.
                    if let Some(new) = remap.new_id(row) {
                        generation.apply_delete(new)?;
                        replayed_deletes += 1;
                    } else {
                        debug_assert!(false, "logged delete of an unmapped row {row}");
                    }
                }
            }
        }
        let from = self.epoch();
        let to = generation.epoch();
        debug_assert!(to > from, "the installed epoch must move past the old one");
        generation.id = self.generation.id + 1;
        let old = std::mem::replace(&mut self.generation, generation);
        let old_stats = match &old.asfs {
            Some(asfs) => asfs.maintenance_stats(),
            None => std::mem::take(&mut self.sfsd_stats),
        };
        self.carried_stats = self.carried_stats.merged(old_stats);
        if old.asfs.is_some() {
            // SfsD replay bypasses `sfsd_stats`, so only the Adaptive-SFS-backed
            // configurations double-count and need the deduction.
            self.carried_stats.inserts -= replayed_inserts;
            self.carried_stats.deletes -= replayed_deletes;
        }
        self.carried_stats.rebuilds += 1;
        self.carried_stats.reclaimed_rows += remap.reclaimed() as u64;
        self.mutations_since_rebuild = 0;
        let published = GenerationRemap {
            remap: Arc::new(remap),
            from,
            to,
        };
        self.remap_history.push(published.clone());
        if self.remap_history.len() > REMAP_CHAIN_LIMIT {
            let excess = self.remap_history.len() - REMAP_CHAIN_LIMIT;
            self.remap_history.drain(..excess);
        }
        Ok(published)
    }

    fn require_mutable(&self) -> Result<()> {
        if self.supports_mutation() {
            Ok(())
        } else {
            Err(SkylineError::InvalidArgument(format!(
                "engine configuration {:?} answers from frozen materialized structures and \
                 does not support mutation; rebuild the engine instead",
                self.config
            )))
        }
    }

    fn ensure_epoch(&self, expected: DatasetEpoch) -> Result<()> {
        let actual = self.epoch();
        if actual == expected {
            Ok(())
        } else {
            Err(SkylineError::EpochMismatch {
                expected: expected.get(),
                actual: actual.get(),
            })
        }
    }

    /// Answers an implicit-preference query.
    pub fn query(&self, pref: &Preference) -> Result<QueryOutcome> {
        let mut scratch = EngineScratch::default();
        self.query_with_scratch(pref, &mut scratch)
    }

    /// Like [`SkylineEngine::query_with_scratch`], validating that the engine is still at
    /// `epoch` first — the answer is guaranteed to be computed against exactly that dataset
    /// version or the call fails with [`SkylineError::EpochMismatch`].
    pub fn query_at(
        &self,
        pref: &Preference,
        epoch: DatasetEpoch,
        scratch: &mut EngineScratch,
    ) -> Result<QueryOutcome> {
        self.ensure_epoch(epoch)?;
        self.query_with_scratch(pref, scratch)
    }

    /// Like [`SkylineEngine::query_at`] under a request [`Deadline`]: the elimination scans
    /// poll the deadline at block granularity and the call fails with
    /// [`SkylineError::DeadlineExceeded`] once the budget is spent — releasing the worker
    /// instead of finishing an answer nobody is waiting for.
    pub fn query_at_deadline(
        &self,
        pref: &Preference,
        epoch: DatasetEpoch,
        deadline: &Deadline,
        scratch: &mut EngineScratch,
    ) -> Result<QueryOutcome> {
        self.ensure_epoch(epoch)?;
        self.query_with_deadline(pref, deadline, scratch)
    }

    /// Like [`SkylineEngine::query`], reusing caller-owned scratch buffers across queries.
    ///
    /// Threads that answer many queries (the `skyline-service` worker pool) keep one
    /// [`EngineScratch`] each so the per-query merge and elimination buffers are recycled
    /// instead of reallocated.
    pub fn query_with_scratch(
        &self,
        pref: &Preference,
        scratch: &mut EngineScratch,
    ) -> Result<QueryOutcome> {
        self.query_with_deadline(pref, &Deadline::none(), scratch)
    }

    /// Like [`SkylineEngine::query_with_scratch`] under a request [`Deadline`]. The
    /// Adaptive-SFS and SFS-D elimination scans poll the deadline at block granularity; the
    /// IPO tree paths (set operations, orders of magnitude cheaper than a scan) check it once
    /// up front.
    pub fn query_with_deadline(
        &self,
        pref: &Preference,
        deadline: &Deadline,
        scratch: &mut EngineScratch,
    ) -> Result<QueryOutcome> {
        deadline.check()?;
        match self.config {
            EngineConfig::SfsD => self.query_sfs_d(pref, deadline),
            EngineConfig::AdaptiveSfs => {
                let asfs = self.generation.asfs.as_ref().expect("built in build()");
                Ok(QueryOutcome {
                    skyline: asfs
                        .query_deadline_scratch(
                            pref,
                            skyline_adaptive::ScanMode::default(),
                            deadline,
                            &mut scratch.asfs,
                        )?
                        .0,
                    method: MethodUsed::AdaptiveSfs,
                })
            }
            EngineConfig::IpoTree | EngineConfig::IpoTreeTopK(_) => {
                let tree = self.generation.ipo.as_ref().expect("built in build()");
                Ok(QueryOutcome {
                    skyline: tree.query(self.dataset(), pref)?,
                    method: MethodUsed::IpoTree,
                })
            }
            EngineConfig::BitmapIpoTree => {
                let tree = self.generation.bitmap.as_ref().expect("built in build()");
                Ok(QueryOutcome {
                    skyline: tree.query(self.dataset(), pref)?,
                    method: MethodUsed::IpoTree,
                })
            }
            EngineConfig::Hybrid { .. } => {
                // Same predicate the truncated tree's query rejection uses (Section 5.3):
                // popular (fully materialized) preferences go to the IPO tree, everything
                // else to Adaptive SFS. The tree was materialized at the generation's
                // `tree_epoch`; once the dataset moves past it, every query routes to the
                // incrementally maintained fallback so a stale tree can never answer — until
                // a generation rebuild re-materializes the tree and tree-served queries
                // resume. `serves_from_tree` is the same predicate, exposed for
                // introspection.
                if self.serves_from_tree(pref) {
                    let tree = self.generation.ipo.as_ref().expect("built in build()");
                    Ok(QueryOutcome {
                        skyline: tree.query(self.dataset(), pref)?,
                        method: MethodUsed::IpoTree,
                    })
                } else {
                    let asfs = self.generation.asfs.as_ref().expect("built in build()");
                    Ok(QueryOutcome {
                        skyline: asfs
                            .query_deadline_scratch(
                                pref,
                                skyline_adaptive::ScanMode::default(),
                                deadline,
                                &mut scratch.asfs,
                            )?
                            .0,
                        method: MethodUsed::AdaptiveSfs,
                    })
                }
            }
        }
    }

    /// The SFS-D baseline path: score-sort the live rows with the query ranking, then run
    /// the elimination scan on the compiled dominance kernel (the engine's shared point block
    /// plus orders compiled for this query). Tombstoned rows never enter the candidate list,
    /// so the compiled scan skips them without any rebuild.
    fn query_sfs_d(&self, pref: &Preference, deadline: &Deadline) -> Result<QueryOutcome> {
        let block = self
            .generation
            .block
            .as_ref()
            .expect("SfsD engines build their point block in build()");
        let data = self.dataset();
        let dom = CompiledRelation::for_query(block.clone(), data.schema(), &self.template, pref)?;
        let score = ScoreFn::for_preference(data.schema(), pref)?;
        let all: Vec<PointId> = block.live_ids().collect();
        let sorted = score.sort_by_score(data, &all);
        let (mut skyline, _) = sfs::scan_presorted_deadline(&dom, &sorted, deadline)?;
        skyline.sort_unstable();
        Ok(QueryOutcome {
            skyline,
            method: MethodUsed::SfsD,
        })
    }

    /// Progressive evaluation: returns an [`EngineStream`] that yields confirmed skyline
    /// members one at a time, in ascending query-score order, for **every** configuration.
    ///
    /// * [`EngineConfig::AdaptiveSfs`] (and the hybrid's fallback side) drive the
    ///   Adaptive-SFS progressive scan — the first member is typically available after a
    ///   handful of dominance tests, long before the scan finishes.
    /// * [`EngineConfig::SfsD`] streams its presorted elimination scan: each accepted point
    ///   is final the moment it is accepted (the monotone sort guarantees no retraction).
    /// * IPO-tree-served configurations compute the full answer up front (set operations,
    ///   orders of magnitude cheaper than a scan) and replay it in score order, so stream
    ///   consumers see one uniform contract regardless of the serving method.
    ///
    /// The stream owns shared handles to the generation's dataset and block, so it stays
    /// valid — pinned to the snapshot it was created from — across later engine mutations,
    /// generation swaps, or dropping the engine guard that created it. `deadline` is polled
    /// at block granularity inside [`EngineStream::next_row`]; an expired deadline aborts the
    /// *pull*, not the stream — pulling again after replacing the deadline resumes.
    pub fn query_streaming(&self, pref: &Preference, deadline: Deadline) -> Result<EngineStream> {
        deadline.check()?;
        let epoch = self.epoch();
        let data = self.dataset_arc().clone();
        let score = ScoreFn::for_preference(data.schema(), pref)?;
        let (inner, method) = match self.config {
            EngineConfig::SfsD => {
                let block = self
                    .generation
                    .block
                    .as_ref()
                    .expect("SfsD engines build their point block in build()");
                let dom = CompiledRelation::for_query(
                    block.clone(),
                    data.schema(),
                    &self.template,
                    pref,
                )?;
                let all: Vec<PointId> = block.live_ids().collect();
                let sorted = score.sort_by_score(&data, &all);
                let mut window = DenseWindow::default();
                dom.reset_window(&mut window);
                (
                    StreamInner::Sorted(Box::new(SortedScan {
                        dom,
                        sorted,
                        pos: 0,
                        window,
                    })),
                    MethodUsed::SfsD,
                )
            }
            EngineConfig::AdaptiveSfs => {
                let asfs = self.generation.asfs.as_ref().expect("built in build()");
                (
                    StreamInner::Progressive(Box::new(asfs.query_progressive(pref)?)),
                    MethodUsed::AdaptiveSfs,
                )
            }
            EngineConfig::Hybrid { .. } => {
                if self.serves_from_tree(pref) {
                    let tree = self.generation.ipo.as_ref().expect("built in build()");
                    let ids = tree.query(&data, pref)?;
                    let ordered = score.sort_by_score(&data, &ids);
                    (
                        StreamInner::Materialized(ordered.into_iter()),
                        MethodUsed::IpoTree,
                    )
                } else {
                    let asfs = self.generation.asfs.as_ref().expect("built in build()");
                    (
                        StreamInner::Progressive(Box::new(asfs.query_progressive(pref)?)),
                        MethodUsed::AdaptiveSfs,
                    )
                }
            }
            EngineConfig::IpoTree | EngineConfig::IpoTreeTopK(_) => {
                let tree = self.generation.ipo.as_ref().expect("built in build()");
                let ids = tree.query(&data, pref)?;
                let ordered = score.sort_by_score(&data, &ids);
                (
                    StreamInner::Materialized(ordered.into_iter()),
                    MethodUsed::IpoTree,
                )
            }
            EngineConfig::BitmapIpoTree => {
                let tree = self.generation.bitmap.as_ref().expect("built in build()");
                let ids = tree.query(&data, pref)?;
                let ordered = score.sort_by_score(&data, &ids);
                (
                    StreamInner::Materialized(ordered.into_iter()),
                    MethodUsed::IpoTree,
                )
            }
        };
        Ok(EngineStream {
            inner,
            deadline,
            epoch,
            method,
            score,
            data,
        })
    }

    /// Like [`SkylineEngine::query_streaming`], validating that the engine is still at
    /// `epoch` first (see [`SkylineEngine::query_at`]).
    pub fn query_streaming_at(
        &self,
        pref: &Preference,
        epoch: DatasetEpoch,
        deadline: Deadline,
    ) -> Result<EngineStream> {
        self.ensure_epoch(epoch)?;
        self.query_streaming(pref, deadline)
    }
}

/// The per-configuration state behind an [`EngineStream`].
#[derive(Debug)]
enum StreamInner {
    /// The Adaptive-SFS progressive scan (owns its compiled kernel and merged order).
    Progressive(Box<ProgressiveScan>),
    /// The SFS-D elimination scan, driven lazily over the presorted candidates.
    Sorted(Box<SortedScan>),
    /// A fully materialized answer (IPO-tree-served), replayed in score order.
    Materialized(std::vec::IntoIter<PointId>),
}

/// The lazily driven SFS-D elimination state behind [`StreamInner::Sorted`].
#[derive(Debug)]
struct SortedScan {
    dom: CompiledRelation,
    sorted: Vec<PointId>,
    pos: usize,
    window: DenseWindow,
}

/// A progressive skyline result: confirmed members, one per [`EngineStream::next_row`] call,
/// in ascending query-score order. Created by [`SkylineEngine::query_streaming`].
///
/// Every yielded point is **final** — the stream never retracts — and the set of all yielded
/// points equals the batch [`SkylineEngine::query`] answer for the same preference at the
/// same epoch. The stream holds shared handles to its generation's data, so it is
/// self-contained: callers may drop the engine lock (or the engine) and keep pulling.
#[derive(Debug)]
pub struct EngineStream {
    inner: StreamInner,
    deadline: Deadline,
    epoch: DatasetEpoch,
    method: MethodUsed,
    score: ScoreFn,
    data: Arc<Dataset>,
}

impl EngineStream {
    /// Pulls the next confirmed skyline member, or `Ok(None)` once the stream is exhausted.
    ///
    /// The stream's [`Deadline`] is polled at block granularity; on expiry the call fails
    /// with [`SkylineError::DeadlineExceeded`] but the stream's position is preserved —
    /// [`EngineStream::set_deadline`] plus another pull resumes where it stopped.
    pub fn next_row(&mut self) -> Result<Option<PointId>> {
        match &mut self.inner {
            StreamInner::Progressive(scan) => scan.next_deadline(&self.deadline),
            StreamInner::Sorted(scan) => {
                let bounded = self.deadline.is_bounded();
                // One check per pull, plus block-granularity polling across dominated runs.
                if bounded {
                    self.deadline.check()?;
                }
                while scan.pos < scan.sorted.len() {
                    if bounded && scan.pos.is_multiple_of(DEADLINE_CHECK_INTERVAL) {
                        self.deadline.check()?;
                    }
                    let p = scan.sorted[scan.pos];
                    scan.pos += 1;
                    if scan
                        .dom
                        .window_first_dominator(&mut scan.window, p)
                        .is_none()
                    {
                        scan.dom.push_window(&mut scan.window, p);
                        return Ok(Some(p));
                    }
                }
                Ok(None)
            }
            StreamInner::Materialized(iter) => {
                self.deadline.check()?;
                Ok(iter.next())
            }
        }
    }

    /// Replaces the stream's deadline (e.g. a follower adopting a timed-out leader's stream
    /// under its own budget).
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    /// The engine epoch the stream is a snapshot of.
    pub fn epoch(&self) -> DatasetEpoch {
        self.epoch
    }

    /// Which algorithm is producing the stream.
    pub fn method(&self) -> MethodUsed {
        self.method
    }

    /// The query score of a yielded point — the monotone order the stream emits in. A
    /// sharded merger gates its cross-shard publication on exactly these scores.
    pub fn score_of(&self, p: PointId) -> f64 {
        self.score.score(&self.data, p)
    }

    /// The dataset snapshot the stream reads from (row values for cross-shard dominance
    /// tests).
    pub fn dataset_arc(&self) -> &Arc<Dataset> {
        &self.data
    }

    /// Drains the rest of the stream into a sorted-id batch answer (the streaming core of
    /// [`SkylineEngine::query`]-compatible results).
    pub fn collect_outcome(mut self) -> Result<QueryOutcome> {
        let mut skyline = Vec::new();
        while let Some(p) = self.next_row()? {
            skyline.push(p);
        }
        skyline.sort_unstable();
        Ok(QueryOutcome {
            skyline,
            method: self.method,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::algo::bnl;
    use skyline_core::{
        DatasetBuilder, Dimension, DominanceContext, RowValue, Schema, SkylineError,
    };

    fn table3_data() -> Arc<Dataset> {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group, airline) in [
            (1600.0, 4.0, "T", "G"),
            (2400.0, 1.0, "T", "G"),
            (3000.0, 5.0, "H", "G"),
            (3600.0, 4.0, "H", "R"),
            (2400.0, 2.0, "M", "R"),
            (3000.0, 3.0, "M", "W"),
        ] {
            b.push_row([
                RowValue::Num(price),
                RowValue::Num(-class),
                group.into(),
                airline.into(),
            ])
            .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn every_engine_config_agrees_with_the_oracle() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let configs = [
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::IpoTree,
            EngineConfig::BitmapIpoTree,
            EngineConfig::Hybrid { top_k: 3 },
        ];
        let specs: Vec<Vec<(&str, &str)>> = vec![
            vec![("hotel-group", "M < *")],
            vec![("hotel-group", "M < H < *"), ("airline", "G < R < *")],
            vec![("airline", "W < *")],
            vec![],
        ];
        for config in configs {
            let engine = SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            assert_eq!(engine.config(), config);
            for spec in &specs {
                let pref = Preference::parse(&schema, spec.clone()).unwrap();
                let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
                let expected = bnl::skyline(&ctx);
                let outcome = engine.query(&pref).unwrap();
                assert_eq!(
                    outcome.skyline, expected,
                    "config {config:?}, spec {spec:?}"
                );
            }
        }
    }

    #[test]
    fn hybrid_falls_back_to_adaptive_sfs_for_unpopular_values() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let engine = SkylineEngine::build(
            data.clone(),
            template.clone(),
            EngineConfig::Hybrid { top_k: 1 },
        )
        .unwrap();
        // Airline G (id 0) is the most frequent: materialized → answered by the IPO tree.
        let popular = Preference::parse(&schema, [("airline", "G < *")]).unwrap();
        assert_eq!(engine.query(&popular).unwrap().method, MethodUsed::IpoTree);
        // Airline W is unpopular → falls back to Adaptive SFS, same answer as the oracle.
        let unpopular = Preference::parse(&schema, [("airline", "W < *")]).unwrap();
        let outcome = engine.query(&unpopular).unwrap();
        assert_eq!(outcome.method, MethodUsed::AdaptiveSfs);
        let ctx = DominanceContext::for_query(&data, &template, &unpopular).unwrap();
        assert_eq!(outcome.skyline, bnl::skyline(&ctx));
    }

    #[test]
    fn top_k_engine_rejects_unmaterialized_values() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let engine =
            SkylineEngine::build(data.clone(), template, EngineConfig::IpoTreeTopK(1)).unwrap();
        let unpopular = Preference::parse(&schema, [("airline", "W < *")]).unwrap();
        assert!(matches!(
            engine.query(&unpopular),
            Err(SkylineError::NotMaterialized { .. })
        ));
        assert!(engine.ipo_tree().is_some());
        assert!(engine.adaptive().is_none());
    }

    #[test]
    fn engine_is_send_and_sync() {
        // Compile-time assertion: one engine build must be shareable across threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SkylineEngine>();
        assert_send_sync::<AdaptiveSfs>();
        assert_send_sync::<QueryOutcome>();
        assert_send_sync::<SharedEngine>();
    }

    #[test]
    fn sfs_d_mutations_tombstone_and_append_without_rebuild() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let mut engine =
            SkylineEngine::build(data.clone(), template.clone(), EngineConfig::SfsD).unwrap();
        let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        assert_eq!(engine.epoch(), DatasetEpoch::INITIAL);

        // Delete skyline member e (id 4: the cheap M package): the answer must change.
        let before = engine.query(&pref).unwrap().skyline;
        assert!(before.contains(&4));
        let epoch = engine.delete_row(4).unwrap();
        assert_eq!(epoch.get(), 1);
        assert!(!engine.is_row_live(4));
        assert_eq!(engine.live_rows(), 5);
        let after = engine.query(&pref).unwrap().skyline;
        assert!(!after.contains(&4), "tombstoned rows must never be served");
        let ctx = DominanceContext::for_query(engine.dataset(), &template, &pref).unwrap();
        let live: Vec<PointId> = engine
            .dataset()
            .point_ids()
            .filter(|&p| engine.is_row_live(p))
            .collect();
        assert_eq!(after, bnl::skyline_of(&ctx, &live));

        // Insert a dominating row: it must appear in the next answer.
        let epoch = engine.insert_row(&[100.0, -9.0], &[2, 0]).unwrap();
        assert_eq!(epoch.get(), 2);
        assert_eq!(engine.dataset().len(), 7);
        let answer = engine.query(&pref).unwrap().skyline;
        assert!(answer.contains(&6));
    }

    #[test]
    fn query_at_rejects_stale_epochs() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let mut engine = SkylineEngine::build(data, template, EngineConfig::AdaptiveSfs).unwrap();
        let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        let mut scratch = EngineScratch::default();
        let epoch = engine.epoch();
        assert!(engine.query_at(&pref, epoch, &mut scratch).is_ok());
        assert!(engine.check_servable_at(&pref, epoch).is_ok());
        engine.insert_row(&[1.0, 1.0], &[0, 0]).unwrap();
        assert!(matches!(
            engine.query_at(&pref, epoch, &mut scratch),
            Err(SkylineError::EpochMismatch { .. })
        ));
        assert!(matches!(
            engine.check_servable_at(&pref, epoch),
            Err(SkylineError::EpochMismatch { .. })
        ));
        assert!(engine.query_at(&pref, engine.epoch(), &mut scratch).is_ok());
    }

    #[test]
    fn shared_engine_mutations_are_visible_to_every_clone() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let shared = SharedEngine::from(
            SkylineEngine::build(data, template, EngineConfig::Hybrid { top_k: 2 }).unwrap(),
        );
        let clone = shared.clone();
        let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        let before = shared.read().query(&pref).unwrap().skyline;
        let epoch = clone.write().insert_row(&[1.0, -9.0], &[2, 0]).unwrap();
        assert_eq!(epoch, shared.read().epoch());
        let after = shared.read().query(&pref).unwrap().skyline;
        assert_ne!(before, after, "clones must observe the mutation");
        assert!(after.contains(&6));
    }

    #[test]
    fn point_block_exists_exactly_for_dominance_scanning_configs() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        for (config, expects_block) in [
            (EngineConfig::SfsD, true),
            (EngineConfig::AdaptiveSfs, true),
            (EngineConfig::Hybrid { top_k: 2 }, true),
            (EngineConfig::IpoTree, false),
            (EngineConfig::IpoTreeTopK(2), false),
            (EngineConfig::BitmapIpoTree, false),
        ] {
            let engine = SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            assert_eq!(
                engine.point_block().is_some(),
                expects_block,
                "config {config:?}"
            );
            if let Some(block) = engine.point_block() {
                assert_eq!(block.len(), data.len());
            }
        }
        // Hybrid engines share one block between the engine and the aSFS fallback.
        let hybrid = SkylineEngine::build(
            data.clone(),
            template.clone(),
            EngineConfig::Hybrid { top_k: 2 },
        )
        .unwrap();
        assert!(Arc::ptr_eq(
            hybrid.point_block().unwrap(),
            hybrid.adaptive().unwrap().point_block()
        ));
    }

    #[test]
    fn streaming_matches_batch_for_every_config_in_score_order() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let configs = [
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::IpoTree,
            EngineConfig::BitmapIpoTree,
            EngineConfig::Hybrid { top_k: 3 },
        ];
        let specs: Vec<Vec<(&str, &str)>> = vec![
            vec![("hotel-group", "M < *")],
            vec![("hotel-group", "M < H < *"), ("airline", "G < R < *")],
            vec![("airline", "W < *")],
            vec![],
        ];
        for config in configs {
            let engine = SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            for spec in &specs {
                let pref = Preference::parse(&schema, spec.clone()).unwrap();
                let batch = engine.query(&pref).unwrap();
                let mut stream = engine.query_streaming(&pref, Deadline::none()).unwrap();
                assert_eq!(stream.epoch(), engine.epoch());
                let mut streamed = Vec::new();
                let mut last_score = f64::NEG_INFINITY;
                while let Some(p) = stream.next_row().unwrap() {
                    let s = stream.score_of(p);
                    assert!(
                        s >= last_score,
                        "config {config:?}, spec {spec:?}: score order violated"
                    );
                    last_score = s;
                    streamed.push(p);
                }
                streamed.sort_unstable();
                assert_eq!(
                    streamed, batch.skyline,
                    "config {config:?}, spec {spec:?}: streamed set != batch skyline"
                );
            }
        }
    }

    #[test]
    fn collect_outcome_reproduces_the_batch_answer() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let engine =
            SkylineEngine::build(data, template, EngineConfig::Hybrid { top_k: 2 }).unwrap();
        let pref = Preference::parse(&schema, [("airline", "W < *")]).unwrap();
        let batch = engine.query(&pref).unwrap();
        let outcome = engine
            .query_streaming(&pref, Deadline::none())
            .unwrap()
            .collect_outcome()
            .unwrap();
        assert_eq!(outcome, batch);
    }

    #[test]
    fn stream_deadline_expiry_aborts_the_pull_and_resumes_after_replacement() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let engine = SkylineEngine::build(data, template, EngineConfig::AdaptiveSfs).unwrap();
        let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        let expected = engine.query(&pref).unwrap().skyline;

        // An expired deadline rejects stream construction outright.
        let expired = Deadline::within(std::time::Duration::ZERO);
        assert_eq!(
            engine.query_streaming(&pref, expired).unwrap_err(),
            SkylineError::DeadlineExceeded
        );

        // Expiry mid-stream aborts the pull; replacing the deadline resumes the same stream.
        let mut stream = engine.query_streaming(&pref, Deadline::none()).unwrap();
        let first = stream.next_row().unwrap().unwrap();
        stream.set_deadline(Deadline::within(std::time::Duration::ZERO));
        assert_eq!(
            stream.next_row().unwrap_err(),
            SkylineError::DeadlineExceeded
        );
        stream.set_deadline(Deadline::none());
        let mut streamed = vec![first];
        while let Some(p) = stream.next_row().unwrap() {
            streamed.push(p);
        }
        streamed.sort_unstable();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn streams_pin_their_generation_snapshot_across_mutations() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        for config in [EngineConfig::SfsD, EngineConfig::AdaptiveSfs] {
            let mut engine = SkylineEngine::build(data.clone(), template.clone(), config).unwrap();
            let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
            let before = engine.query(&pref).unwrap().skyline;
            let mut stream = engine.query_streaming(&pref, Deadline::none()).unwrap();
            // A dominating insert lands mid-stream; the stream must keep answering from its
            // snapshot while fresh queries see the new row.
            engine.insert_row(&[1.0, -9.0], &[2, 0]).unwrap();
            let mut streamed = Vec::new();
            while let Some(p) = stream.next_row().unwrap() {
                streamed.push(p);
            }
            streamed.sort_unstable();
            assert_eq!(streamed, before, "config {config:?}: snapshot violated");
            assert!(engine.query(&pref).unwrap().skyline.contains(&6));
        }
    }

    #[test]
    fn query_streaming_at_rejects_stale_epochs() {
        let data = table3_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let mut engine = SkylineEngine::build(data, template, EngineConfig::AdaptiveSfs).unwrap();
        let pref = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        let epoch = engine.epoch();
        assert!(engine
            .query_streaming_at(&pref, epoch, Deadline::none())
            .is_ok());
        engine.insert_row(&[1.0, 1.0], &[0, 0]).unwrap();
        assert!(matches!(
            engine.query_streaming_at(&pref, epoch, Deadline::none()),
            Err(SkylineError::EpochMismatch { .. })
        ));
    }

    #[test]
    fn accessors_expose_bound_state() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let engine =
            SkylineEngine::build(data.clone(), template, EngineConfig::AdaptiveSfs).unwrap();
        assert!(std::ptr::eq(engine.dataset(), &*data));
        assert!(Arc::ptr_eq(engine.dataset_arc(), &data));
        assert_eq!(engine.template().nominal_count(), 2);
        assert!(engine.adaptive().is_some());
        assert!(engine.ipo_tree().is_none());
    }
}
