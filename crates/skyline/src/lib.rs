//! # skyline
//!
//! Facade crate for the reproduction of *"Efficient Skyline Querying with Variable User
//! Preferences on Nominal Attributes"* (Wong, Fu, Pei, Ho, Wong, Liu).
//!
//! It re-exports the full public API of the workspace and adds the [`engine::SkylineEngine`],
//! a single entry point that can answer implicit-preference skyline queries with any of the
//! paper's methods:
//!
//! * **SFS-D** — the baseline: sort-first-skyline over the whole dataset per query;
//! * **SFS-A** — Adaptive SFS: presorted template skyline, per-query re-ranking of affected
//!   points, progressive output;
//! * **IPO Tree / IPO Tree-K** — partial materialization of first-order preference skylines
//!   combined per query with the merging property;
//! * **Hybrid** — the recommendation of Section 5.3: IPO tree for the popular values, Adaptive
//!   SFS as the fallback for queries mentioning unmaterialized values.
//!
//! ```
//! use skyline::prelude::*;
//!
//! // Table 1 of the paper: vacation packages.
//! let schema = Schema::new(vec![
//!     Dimension::numeric("price"),
//!     Dimension::numeric("class-neg"),
//!     Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
//! ]).unwrap();
//! let mut builder = DatasetBuilder::new(schema);
//! for (price, class, group) in [
//!     (1600.0, 4.0, "T"), (2400.0, 1.0, "T"), (3000.0, 5.0, "H"),
//!     (3600.0, 4.0, "H"), (2400.0, 2.0, "M"), (3000.0, 3.0, "M"),
//! ] {
//!     builder.push_row([RowValue::Num(price), RowValue::Num(-class), group.into()]).unwrap();
//! }
//! // Shared ownership: the engine holds an `Arc<Dataset>`, so it is `Send + Sync` and one
//! // build can serve queries from many threads (see the `skyline-service` crate).
//! let data = std::sync::Arc::new(builder.build().unwrap());
//! let template = Template::empty(data.schema());
//! let engine = SkylineEngine::build(data.clone(), template, EngineConfig::Hybrid { top_k: 10 }).unwrap();
//!
//! // Alice prefers Tulips, then Mozilla: her skyline is {a, c}.
//! let alice = Preference::parse(data.schema(), [("hotel-group", "T < M < *")]).unwrap();
//! let outcome = engine.query(&alice).unwrap();
//! assert_eq!(outcome.skyline, vec![0, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod maintenance;
pub mod snapshot;

pub use engine::{
    EngineConfig, EngineScratch, EngineStream, Generation, GenerationRemap, GenerationSnapshot,
    MethodUsed, PendingGeneration, QueryOutcome, SharedEngine, SkylineEngine, REMAP_CHAIN_LIMIT,
};
pub use maintenance::{
    BuildHandle, BuildHook, BuildPool, BuildPoolConfig, MaintenanceHandle, MaintenancePolicy,
    MaintenanceWorker,
};

pub use skyline_adaptive as adaptive;
pub use skyline_core as model;
pub use skyline_datagen as datagen;
pub use skyline_ipo as ipo;

/// Convenient glob import for applications: `use skyline::prelude::*;`.
pub mod prelude {
    pub use crate::engine::{
        EngineConfig, EngineScratch, EngineStream, Generation, GenerationRemap, MethodUsed,
        QueryOutcome, SharedEngine, SkylineEngine,
    };
    pub use crate::maintenance::{MaintenanceHandle, MaintenancePolicy, MaintenanceWorker};
    pub use skyline_adaptive::{AdaptiveSfs, MaintenanceStats};
    pub use skyline_core::{
        CompiledRelation, Dataset, DatasetBuilder, DatasetEpoch, Dimension, DimensionKind,
        DomRelation, Dominance, DominanceContext, ImplicitPreference, NominalDomain, PartialOrder,
        PointBlock, PointId, Preference, Result, RowIdRemap, RowValue, Schema, SkylineError,
        Template, ValueId,
    };
    pub use skyline_datagen::{Distribution, ExperimentConfig, QueryGenerator, WorkloadOp};
    pub use skyline_ipo::{BitmapIpoTree, BuildStrategy, IpoTree, IpoTreeBuilder};
}
