//! Engine-level persistence: [`SkylineEngine::write_snapshot`] / [`SkylineEngine::from_snapshot`].
//!
//! A snapshot captures one serving [`Generation`] in the versioned, checksummed container of
//! [`skyline_core::snapshot`]: the row-major point block as raw column sections, the
//! Adaptive-SFS sorted list as a score/point table, and the IPO tree as delta-encoded vbyte
//! posting lists. Loading is the inverse *without the preprocessing*: no template-skyline
//! computation, no score sort, no node materialization — just decode, validate, and
//! reassemble, which is what makes a snapshot cold start at `n = 100k` an order of magnitude
//! faster than [`SkylineEngine::build`] (hard-asserted by `bench_snapshot`).
//!
//! Continuity: the generation [`Generation::id`], the block's [`DatasetEpoch`] and the
//! [`Generation::tree_epoch`] all survive the round trip, so epoch-tagged artifacts (result
//! caches, remap-chain translations) built before a process restart keep validating against
//! the reloaded engine exactly as they would across a generation swap.
//!
//! Failure model: any parse or validation problem — bad magic, checksum mismatch, truncated
//! or structurally inconsistent payloads — surfaces as [`SkylineError::Snapshot`]. The caller
//! treats that as "no usable snapshot" and falls back to a full preprocess; a partially
//! loaded engine is never produced.

use crate::engine::{EngineConfig, Generation, SkylineEngine};
use skyline_adaptive::snapshot::{decode_entries, encode_entries};
use skyline_adaptive::AdaptiveSfs;
use skyline_core::kernel::{DatasetEpoch, PointBlock};
use skyline_core::snapshot::{self as snap, ByteReader, ByteWriter, SnapshotBuilder, SnapshotView};
use skyline_core::{PointId, Result, SkylineError};
use skyline_ipo::{decode_tree, encode_tree, BitmapIpoTree};
use std::path::Path;
use std::sync::Arc;

/// Wire tags for [`EngineConfig`] in the `SECTION_ENGINE_META` payload.
const CONFIG_SFS_D: u8 = 0;
const CONFIG_ADAPTIVE_SFS: u8 = 1;
const CONFIG_IPO_TREE: u8 = 2;
const CONFIG_IPO_TREE_TOP_K: u8 = 3;
const CONFIG_BITMAP_IPO_TREE: u8 = 4;
const CONFIG_HYBRID: u8 = 5;

/// Reconstruction errors are corruption reports: a decoded payload that fails a structural
/// constructor check means the snapshot does not describe a buildable engine.
fn as_snapshot_error(e: SkylineError) -> SkylineError {
    match e {
        SkylineError::Snapshot(_) => e,
        other => SkylineError::Snapshot(format!("decoded state is inconsistent: {other}")),
    }
}

impl SkylineEngine {
    /// Serializes the engine's serving generation into a self-describing snapshot buffer.
    ///
    /// The write path reads `&self` only — run it off the maintenance build pool (see
    /// `skyline-service`) while readers keep serving. Configurations that carry no point
    /// block (the frozen IPO trees) transpose a transient one at write time so every
    /// snapshot is loadable through the same column sections.
    pub fn write_snapshot(&self) -> Result<Vec<u8>> {
        let generation = self.generation();
        let mut builder = SnapshotBuilder::new();
        let mut meta = ByteWriter::new();
        match self.config() {
            EngineConfig::SfsD => meta.put_u8(CONFIG_SFS_D),
            EngineConfig::AdaptiveSfs => meta.put_u8(CONFIG_ADAPTIVE_SFS),
            EngineConfig::IpoTree => meta.put_u8(CONFIG_IPO_TREE),
            EngineConfig::IpoTreeTopK(k) => {
                meta.put_u8(CONFIG_IPO_TREE_TOP_K);
                meta.put_vbyte(k as u64);
            }
            EngineConfig::BitmapIpoTree => meta.put_u8(CONFIG_BITMAP_IPO_TREE),
            EngineConfig::Hybrid { top_k } => {
                meta.put_u8(CONFIG_HYBRID);
                meta.put_vbyte(top_k as u64);
            }
        }
        meta.put_u64(generation.id());
        meta.put_u64(generation.tree_epoch().get());
        builder.section(snap::SECTION_ENGINE_META, meta.into_inner());
        builder.section(
            snap::SECTION_SCHEMA,
            snap::encode_schema(self.dataset().schema()),
        );
        builder.section(
            snap::SECTION_TEMPLATE,
            snap::encode_template(self.template()),
        );
        match self.point_block() {
            Some(block) => snap::write_block_sections(block, &mut builder),
            None => {
                let transient = PointBlock::new(self.dataset());
                snap::write_block_sections(&transient, &mut builder);
            }
        }
        if let Some(tree) = &self.generation.ipo {
            builder.section(snap::SECTION_IPO_TREE, encode_tree(tree));
        } else if let Some(bitmap) = &self.generation.bitmap {
            builder.section(snap::SECTION_IPO_TREE, encode_tree(&bitmap.to_ipo_tree()));
        }
        if let Some(asfs) = &self.generation.asfs {
            builder.section(
                snap::SECTION_ASFS_ENTRIES,
                encode_entries(asfs.sorted_entries()),
            );
        }
        Ok(builder.finish())
    }

    /// [`SkylineEngine::write_snapshot`] to a file, atomically (temp file + rename): a
    /// crashed writer leaves either the previous snapshot or none, never a torn one.
    pub fn write_snapshot_file(&self, path: &Path) -> Result<()> {
        let bytes = self.write_snapshot()?;
        snap::write_atomic(path, &bytes)?;
        Ok(())
    }

    /// Reconstructs an engine from a snapshot buffer without re-running preprocessing.
    ///
    /// Everything is re-validated on the way in — container checksums first, then every
    /// structural invariant of the decoded structures — so a corrupt buffer fails with
    /// [`SkylineError::Snapshot`] rather than panicking or serving wrong rows. On success
    /// the engine is query-for-query equivalent to the one that wrote the snapshot, with
    /// its generation id and epochs intact.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self> {
        let view = SnapshotView::parse(bytes)?;
        let mut meta = ByteReader::new(view.section(snap::SECTION_ENGINE_META)?);
        let config = match meta.get_u8()? {
            CONFIG_SFS_D => EngineConfig::SfsD,
            CONFIG_ADAPTIVE_SFS => EngineConfig::AdaptiveSfs,
            CONFIG_IPO_TREE => EngineConfig::IpoTree,
            CONFIG_IPO_TREE_TOP_K => EngineConfig::IpoTreeTopK(meta.get_vbyte()? as usize),
            CONFIG_BITMAP_IPO_TREE => EngineConfig::BitmapIpoTree,
            CONFIG_HYBRID => EngineConfig::Hybrid {
                top_k: meta.get_vbyte()? as usize,
            },
            other => {
                return Err(SkylineError::Snapshot(format!(
                    "unknown engine configuration tag {other}"
                )))
            }
        };
        let generation_id = meta.get_u64()?;
        let tree_epoch = DatasetEpoch::from_raw(meta.get_u64()?);
        meta.expect_end()?;

        // The section set must be exactly what this configuration writes — a present-but-
        // unexpected section means the meta and the payloads disagree about the config.
        let mut expected = vec![
            snap::SECTION_ENGINE_META,
            snap::SECTION_SCHEMA,
            snap::SECTION_TEMPLATE,
            snap::SECTION_BLOCK_HEADER,
            snap::SECTION_BLOCK_NUMERICS,
            snap::SECTION_BLOCK_NOMINALS,
            snap::SECTION_BLOCK_MAX_VALUES,
            snap::SECTION_BLOCK_LIVENESS,
        ];
        let has_tree = matches!(
            config,
            EngineConfig::IpoTree
                | EngineConfig::IpoTreeTopK(_)
                | EngineConfig::BitmapIpoTree
                | EngineConfig::Hybrid { .. }
        );
        let has_asfs = matches!(
            config,
            EngineConfig::AdaptiveSfs | EngineConfig::Hybrid { .. }
        );
        if has_asfs {
            expected.push(snap::SECTION_ASFS_ENTRIES);
        }
        if has_tree {
            expected.push(snap::SECTION_IPO_TREE);
        }
        let mut present = view.section_ids();
        present.sort_unstable();
        expected.sort_unstable();
        if present != expected {
            return Err(SkylineError::Snapshot(format!(
                "section set {present:?} does not match configuration {config:?}"
            )));
        }

        let schema = snap::decode_schema(view.section(snap::SECTION_SCHEMA)?)?;
        let template = snap::decode_template(&schema, view.section(snap::SECTION_TEMPLATE)?)?;
        let block = snap::read_block(&view)?;
        let data = Arc::new(snap::dataset_from_block(&schema, &block)?);
        let block = Arc::new(block);
        if tree_epoch > block.epoch() {
            return Err(SkylineError::Snapshot(format!(
                "tree epoch {} is ahead of the block epoch {}",
                tree_epoch.get(),
                block.epoch().get()
            )));
        }
        // Frozen configurations never mutate: their (transient) block must be pristine.
        if matches!(
            config,
            EngineConfig::IpoTree | EngineConfig::IpoTreeTopK(_) | EngineConfig::BitmapIpoTree
        ) && (block.epoch() != DatasetEpoch::INITIAL || block.dead_count() != 0)
        {
            return Err(SkylineError::Snapshot(
                "frozen configuration with a mutated point block".into(),
            ));
        }

        let decoded_tree = if has_tree {
            let tree = decode_tree(
                template.clone(),
                data.len(),
                view.section(snap::SECTION_IPO_TREE)?,
            )?;
            let expected_top_k = match config {
                EngineConfig::IpoTreeTopK(k) => Some(k),
                EngineConfig::Hybrid { top_k } => Some(top_k),
                _ => None,
            };
            if tree.top_k() != expected_top_k {
                return Err(SkylineError::Snapshot(format!(
                    "tree truncation {:?} does not match configuration {config:?}",
                    tree.top_k()
                )));
            }
            Some(tree)
        } else {
            None
        };
        let decoded_entries = if has_asfs {
            Some(decode_entries(
                view.section(snap::SECTION_ASFS_ENTRIES)?,
                block.len(),
            )?)
        } else {
            None
        };

        let generation = match config {
            EngineConfig::SfsD => Generation {
                id: generation_id,
                data: Some(data),
                block: Some(block),
                ipo: None,
                bitmap: None,
                asfs: None,
                tree_epoch,
            },
            EngineConfig::AdaptiveSfs => {
                let asfs = AdaptiveSfs::from_sorted_entries(
                    data,
                    block,
                    template.clone(),
                    decoded_entries.expect("decoded for asfs configs"),
                )
                .map_err(as_snapshot_error)?;
                Generation {
                    id: generation_id,
                    data: None,
                    block: None,
                    ipo: None,
                    bitmap: None,
                    asfs: Some(asfs),
                    tree_epoch,
                }
            }
            EngineConfig::IpoTree | EngineConfig::IpoTreeTopK(_) => Generation {
                id: generation_id,
                data: Some(data),
                block: None,
                ipo: Some(Arc::new(decoded_tree.expect("decoded for tree configs"))),
                bitmap: None,
                asfs: None,
                tree_epoch,
            },
            EngineConfig::BitmapIpoTree => {
                let tree = decoded_tree.expect("decoded for tree configs");
                let bitmap = BitmapIpoTree::from_tree(&tree, &data);
                Generation {
                    id: generation_id,
                    data: Some(data),
                    block: None,
                    ipo: None,
                    bitmap: Some(bitmap),
                    asfs: None,
                    tree_epoch,
                }
            }
            EngineConfig::Hybrid { .. } => {
                let tree = decoded_tree.expect("decoded for tree configs");
                let entries = decoded_entries.expect("decoded for asfs configs");
                // A current tree and the sorted list describe the same template skyline; a
                // stale tree (dataset mutated since materialization, `tree_epoch` behind)
                // legitimately drifts from the incrementally maintained list and is never
                // consulted until a rebuild.
                if tree_epoch == block.epoch() {
                    let mut list_ids: Vec<PointId> = entries.iter().map(|e| e.point).collect();
                    list_ids.sort_unstable();
                    if list_ids != tree.skyline() {
                        return Err(SkylineError::Snapshot(
                            "current hybrid tree and sorted list disagree on the template \
                             skyline"
                                .into(),
                        ));
                    }
                }
                let asfs = AdaptiveSfs::from_sorted_entries(data, block, template.clone(), entries)
                    .map_err(as_snapshot_error)?;
                Generation {
                    id: generation_id,
                    data: None,
                    block: None,
                    ipo: Some(Arc::new(tree)),
                    bitmap: None,
                    asfs: Some(asfs),
                    tree_epoch,
                }
            }
        };
        Ok(SkylineEngine {
            template,
            config,
            generation,
            replay_log: None,
            mutations_since_rebuild: 0,
            carried_stats: Default::default(),
            sfsd_stats: Default::default(),
            remap_history: Vec::new(),
        })
    }

    /// [`SkylineEngine::from_snapshot`] from a file.
    pub fn from_snapshot_file(path: &Path) -> Result<Self> {
        let bytes = snap::read_file(path)?;
        Self::from_snapshot(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::{
        Dataset, DatasetBuilder, Dimension, Preference, RowValue, Schema, Template,
    };

    fn table3_data() -> Arc<Dataset> {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group, airline) in [
            (1600.0, 4.0, "T", "G"),
            (2400.0, 1.0, "T", "G"),
            (3000.0, 5.0, "H", "G"),
            (3600.0, 4.0, "H", "R"),
            (2400.0, 2.0, "M", "R"),
            (3000.0, 3.0, "M", "W"),
        ] {
            b.push_row([
                RowValue::Num(price),
                RowValue::Num(-class),
                group.into(),
                airline.into(),
            ])
            .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    fn all_configs() -> Vec<EngineConfig> {
        vec![
            EngineConfig::SfsD,
            EngineConfig::AdaptiveSfs,
            EngineConfig::IpoTree,
            EngineConfig::IpoTreeTopK(2),
            EngineConfig::BitmapIpoTree,
            EngineConfig::Hybrid { top_k: 2 },
        ]
    }

    fn some_prefs(data: &Dataset) -> Vec<Preference> {
        [
            vec![("hotel-group", "T < M < *")],
            vec![("airline", "G < *")],
            vec![("hotel-group", "M < *"), ("airline", "R < G < *")],
        ]
        .into_iter()
        .map(|spec| Preference::parse(data.schema(), spec).unwrap())
        .collect()
    }

    #[test]
    fn every_config_round_trips_query_for_query() {
        let data = table3_data();
        for config in all_configs() {
            let template = Template::empty(data.schema());
            let engine = SkylineEngine::build(data.clone(), template, config).unwrap();
            let bytes = engine.write_snapshot().unwrap();
            let loaded = SkylineEngine::from_snapshot(&bytes).unwrap();
            assert_eq!(loaded.config(), config);
            assert_eq!(loaded.generation().id(), engine.generation().id());
            assert_eq!(loaded.epoch(), engine.epoch());
            assert_eq!(
                loaded.generation().tree_epoch(),
                engine.generation().tree_epoch()
            );
            for pref in some_prefs(&data) {
                assert_eq!(
                    loaded.query(&pref).ok(),
                    engine.query(&pref).ok(),
                    "config {config:?}"
                );
            }
        }
    }

    #[test]
    fn mutated_engine_round_trips_with_epoch_continuity() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let mut engine =
            SkylineEngine::build(data.clone(), template, EngineConfig::Hybrid { top_k: 3 })
                .unwrap();
        engine.insert_row(&[1500.0, -5.0], &[1, 2]).unwrap();
        engine.delete_row(2).unwrap();
        let bytes = engine.write_snapshot().unwrap();
        let loaded = SkylineEngine::from_snapshot(&bytes).unwrap();
        assert_eq!(loaded.epoch(), engine.epoch());
        assert_eq!(loaded.live_rows(), engine.live_rows());
        // The tree is stale on both sides, so both route every query to Adaptive SFS.
        for pref in some_prefs(&data) {
            assert!(!loaded.serves_from_tree(&pref));
            assert_eq!(loaded.query(&pref).unwrap(), engine.query(&pref).unwrap());
        }
    }

    #[test]
    fn snapshot_survives_a_generation_swap() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let engine =
            SkylineEngine::build(data.clone(), template, EngineConfig::AdaptiveSfs).unwrap();
        let shared = crate::SharedEngine::new(engine);
        shared.write().delete_row(0).unwrap();
        shared.rebuild_now().unwrap();
        let engine = shared.read();
        let bytes = engine.write_snapshot().unwrap();
        let loaded = SkylineEngine::from_snapshot(&bytes).unwrap();
        assert_eq!(loaded.generation().id(), 1);
        assert_eq!(loaded.epoch(), engine.epoch());
        for pref in some_prefs(&data) {
            assert_eq!(loaded.query(&pref).unwrap(), engine.query(&pref).unwrap());
        }
    }

    #[test]
    fn corrupt_engine_snapshots_error_and_never_panic() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let engine =
            SkylineEngine::build(data.clone(), template, EngineConfig::Hybrid { top_k: 2 })
                .unwrap();
        let bytes = engine.write_snapshot().unwrap();
        for i in 0..bytes.len() {
            for mask in [0x01u8, 0x80u8] {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= mask;
                assert!(
                    SkylineEngine::from_snapshot(&corrupt).is_err(),
                    "flip at byte {i} went undetected"
                );
            }
        }
        for len in 0..bytes.len() {
            assert!(SkylineEngine::from_snapshot(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn file_round_trip() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let engine = SkylineEngine::build(data.clone(), template, EngineConfig::SfsD).unwrap();
        let dir = std::env::temp_dir().join("skyline-engine-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snap");
        engine.write_snapshot_file(&path).unwrap();
        let loaded = SkylineEngine::from_snapshot_file(&path).unwrap();
        for pref in some_prefs(&data) {
            assert_eq!(loaded.query(&pref).unwrap(), engine.query(&pref).unwrap());
        }
        std::fs::remove_file(&path).ok();
    }
}
