//! Background engine maintenance: a worker thread that watches a [`SharedEngine`] and runs
//! generation rebuilds — physical compaction with row-id remapping plus IPO
//! re-materialization — when a [`MaintenancePolicy`] says the accumulated debt is worth
//! paying.
//!
//! Production skyline systems treat index maintenance as a lifecycle concern rather than a
//! foreground cost: mutations stay cheap in-place updates, and a background thread
//! periodically folds the accumulated tombstones and stale materializations back into a
//! fresh, compact generation. The worker here is exactly the three-step cycle of
//! [`SharedEngine::rebuild_now`] driven off-thread: snapshot under the write lock
//! (microseconds), build with **no lock held** (readers are never blocked on a build), swap
//! atomically. Mutations that land mid-build are replayed onto the new generation before the
//! swap.

use crate::engine::SharedEngine;
use skyline_core::Result;
use std::sync::mpsc::{self, RecvTimeoutError, Sender, SyncSender};
use std::thread::JoinHandle;
use std::time::Duration;

/// When the background worker should rebuild the engine's generation.
///
/// Two debts accumulate under sustained writes, and each has a knob:
///
/// * **memory** — tombstoned rows still physically occupy the dataset and block until a
///   compaction reclaims them: [`MaintenancePolicy::dead_row_ratio`];
/// * **latency** — a mutated hybrid engine abandons its IPO tree and serves every query from
///   the slower Adaptive-SFS fallback until the tree is re-materialized:
///   [`MaintenancePolicy::max_mutations_since_rebuild`].
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenancePolicy {
    /// Rebuild when at least this fraction of the block's rows are tombstoned (and at least
    /// one is). `1.0` effectively disables the ratio trigger.
    pub dead_row_ratio: f64,
    /// Rebuild when this many epoch-bumping mutations have been applied since the last swap
    /// (or the build). For a hybrid engine this bounds how long queries stay on the fallback
    /// path; `1` re-materializes after every mutation burst, `u64::MAX` disables the trigger.
    pub max_mutations_since_rebuild: u64,
    /// How often the worker wakes up to evaluate the policy when nobody nudges it.
    pub poll_interval: Duration,
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        Self {
            dead_row_ratio: 0.25,
            max_mutations_since_rebuild: 4096,
            poll_interval: Duration::from_millis(100),
        }
    }
}

impl MaintenancePolicy {
    /// True when the engine's accumulated debt crosses either threshold. Frozen
    /// configurations (no mutation path, hence no debt) are never due; neither is an engine
    /// with a rebuild already in flight.
    pub fn due(&self, engine: &crate::SkylineEngine) -> bool {
        if !engine.supports_mutation() || engine.rebuild_in_flight() {
            return false;
        }
        let Some(block) = engine.point_block() else {
            return false;
        };
        let dead_due = block.dead_count() > 0 && block.dead_ratio() >= self.dead_row_ratio;
        let mutation_due = engine.mutations_since_rebuild() >= self.max_mutations_since_rebuild
            && engine.mutations_since_rebuild() > 0;
        dead_due || mutation_due
    }
}

enum Signal {
    /// Evaluate the policy now (sent after mutations so due rebuilds start promptly).
    Nudge,
    /// Run a rebuild cycle regardless of the policy; ack with whether a swap was installed.
    Force(SyncSender<Result<bool>>),
    Shutdown,
}

/// Handle to a running [`MaintenanceWorker`]; dropping it shuts the worker down (joining the
/// thread).
#[derive(Debug)]
pub struct MaintenanceHandle {
    tx: Sender<Signal>,
    thread: Option<JoinHandle<()>>,
}

impl MaintenanceHandle {
    /// Nudges the worker to evaluate its policy now instead of waiting for the next poll
    /// tick. Non-blocking and cheap — call it after every mutation.
    pub fn notify(&self) {
        let _ = self.tx.send(Signal::Nudge);
    }

    /// Runs one rebuild cycle right now, regardless of the policy, and waits for it to
    /// finish. Returns `Ok(true)` when a new generation was installed, `Ok(false)` when the
    /// worker skipped (e.g. a rebuild was already in flight), and the build error otherwise.
    /// Deterministic tests and pre-traffic warmup hooks use this; steady-state operation
    /// relies on the policy.
    pub fn force_rebuild(&self) -> Result<bool> {
        let (ack, done) = mpsc::sync_channel(1);
        if self.tx.send(Signal::Force(ack)).is_err() {
            return Ok(false);
        }
        done.recv().unwrap_or(Ok(false))
    }
}

impl Drop for MaintenanceHandle {
    fn drop(&mut self) {
        let _ = self.tx.send(Signal::Shutdown);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The background maintenance worker (see the module docs).
pub struct MaintenanceWorker;

impl MaintenanceWorker {
    /// Spawns the worker thread watching `engine` under `policy` and returns its handle.
    ///
    /// The worker wakes on every [`MaintenanceHandle::notify`] and at least every
    /// [`MaintenancePolicy::poll_interval`]; when [`MaintenancePolicy::due`] holds it runs one
    /// rebuild cycle. Build errors leave the old generation serving and are retried on the
    /// next due evaluation.
    pub fn spawn(engine: SharedEngine, policy: MaintenancePolicy) -> MaintenanceHandle {
        let (tx, rx) = mpsc::channel();
        let poll = policy.poll_interval;
        let thread = std::thread::Builder::new()
            .name("skyline-maintenance".into())
            .spawn(move || loop {
                match rx.recv_timeout(poll) {
                    Ok(Signal::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                    Ok(Signal::Nudge) | Err(RecvTimeoutError::Timeout) => {
                        if policy.due(&engine.read()) {
                            let _ = run_cycle(&engine);
                        }
                    }
                    Ok(Signal::Force(ack)) => {
                        let _ = ack.send(run_cycle(&engine));
                    }
                }
            })
            .expect("spawning the maintenance worker thread");
        MaintenanceHandle {
            tx,
            thread: Some(thread),
        }
    }
}

/// One rebuild cycle; `Ok(false)` when skipped because a rebuild was already in flight.
fn run_cycle(engine: &SharedEngine) -> Result<bool> {
    if engine.read().rebuild_in_flight() {
        return Ok(false);
    }
    engine.rebuild_now().map(|_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, SkylineEngine};
    use skyline_core::{Dataset, Dimension, NominalDomain, Schema, Template};
    use std::sync::Arc;

    fn shared(config: EngineConfig) -> SharedEngine {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(3)),
        ])
        .unwrap();
        let mut data = Dataset::empty(schema.clone());
        for (x, g) in [(3.0, 0), (2.0, 1), (1.0, 2), (5.0, 0), (4.0, 1)] {
            data.push_row_ids(&[x], &[g]).unwrap();
        }
        let template = Template::empty(&schema);
        SharedEngine::new(SkylineEngine::build(Arc::new(data), template, config).unwrap())
    }

    #[test]
    fn policy_triggers_on_either_threshold() {
        let policy = MaintenancePolicy {
            dead_row_ratio: 0.3,
            max_mutations_since_rebuild: 3,
            ..MaintenancePolicy::default()
        };
        let engine = shared(EngineConfig::AdaptiveSfs);
        assert!(!policy.due(&engine.read()), "fresh engines owe nothing");

        // One delete: 1/5 dead < 0.3, 1 mutation < 3 → not due.
        engine.write().delete_row(0).unwrap();
        assert!(!policy.due(&engine.read()));
        // Second delete crosses the dead-row ratio (2/5 ≥ 0.3).
        engine.write().delete_row(1).unwrap();
        assert!(policy.due(&engine.read()));

        // A swap clears the debt.
        engine.rebuild_now().unwrap();
        assert!(!policy.due(&engine.read()));

        // Pure inserts never add dead rows but do cross the mutation threshold.
        for _ in 0..3 {
            engine.write().insert_row(&[9.0], &[0]).unwrap();
        }
        assert!(policy.due(&engine.read()));
    }

    #[test]
    fn policy_ignores_frozen_and_in_flight_engines() {
        let policy = MaintenancePolicy {
            max_mutations_since_rebuild: 1,
            ..MaintenancePolicy::default()
        };
        let frozen = shared(EngineConfig::IpoTree);
        assert!(!policy.due(&frozen.read()));

        let engine = shared(EngineConfig::AdaptiveSfs);
        engine.write().delete_row(0).unwrap();
        assert!(policy.due(&engine.read()));
        let _snapshot = engine.write().begin_rebuild().unwrap();
        assert!(
            !policy.due(&engine.read()),
            "one rebuild in flight is enough"
        );
        engine.write().abort_rebuild();
        assert!(policy.due(&engine.read()));
    }

    #[test]
    fn worker_compacts_when_forced_and_shuts_down_on_drop() {
        let engine = shared(EngineConfig::Hybrid { top_k: 2 });
        engine.write().delete_row(0).unwrap();
        engine.write().delete_row(3).unwrap();
        let handle = MaintenanceWorker::spawn(
            engine.clone(),
            MaintenancePolicy {
                // Thresholds the test never crosses: only the forced cycle may rebuild.
                dead_row_ratio: 1.0,
                max_mutations_since_rebuild: u64::MAX,
                poll_interval: Duration::from_millis(10),
            },
        );
        assert!(handle.force_rebuild().unwrap());
        {
            let engine = engine.read();
            let block = engine.point_block().unwrap();
            assert_eq!(block.len(), block.live_count(), "only live rows remain");
            assert_eq!(engine.generation().id(), 1);
            assert_eq!(engine.maintenance_stats().rebuilds, 1);
            assert_eq!(engine.maintenance_stats().reclaimed_rows, 2);
        }
        drop(handle); // joins the thread
        assert!(!engine.read().rebuild_in_flight());
    }

    #[test]
    fn worker_rebuilds_in_the_background_when_due() {
        let engine = shared(EngineConfig::AdaptiveSfs);
        let handle = MaintenanceWorker::spawn(
            engine.clone(),
            MaintenancePolicy {
                dead_row_ratio: 0.2,
                max_mutations_since_rebuild: u64::MAX,
                poll_interval: Duration::from_millis(5),
            },
        );
        engine.write().delete_row(0).unwrap();
        engine.write().delete_row(1).unwrap();
        handle.notify();
        // The worker races this loop; give it ample time before declaring failure.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if engine.read().maintenance_stats().rebuilds >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "worker never compacted"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let engine_guard = engine.read();
        let block = engine_guard.point_block().unwrap();
        assert_eq!(block.dead_count(), 0);
        assert_eq!(block.len(), 3);
    }
}
