//! Background engine maintenance: a shared pool of build threads that watches any number of
//! [`SharedEngine`]s and runs generation rebuilds — physical compaction with row-id
//! remapping plus IPO re-materialization — when a [`MaintenancePolicy`] says the accumulated
//! debt is worth paying.
//!
//! Production skyline systems treat index maintenance as a lifecycle concern rather than a
//! foreground cost: mutations stay cheap in-place updates, and background threads
//! periodically fold the accumulated tombstones and stale materializations back into a
//! fresh, compact generation. A build cycle is exactly the three steps of
//! [`SharedEngine::rebuild_now`] driven off-thread: snapshot under the write lock
//! (microseconds), build with **no lock held** (readers are never blocked on a build), swap
//! atomically. Mutations that land mid-build are replayed onto the new generation before the
//! swap.
//!
//! One engine per worker thread does not survive sharding: a service holding N dataset
//! shards would spawn N threads that are idle almost always and then all rebuild at once
//! right after a write burst, oversubscribing the machine exactly when query traffic resumes.
//! [`BuildPool`] instead shares a small fixed set of build threads across every registered
//! engine: each engine gets its own nudge queue slot, and a **global in-flight cap**
//! ([`BuildPoolConfig::max_in_flight`]) bounds how many generation builds run concurrently no
//! matter how many shards turned due together. [`MaintenanceWorker::spawn`] is the
//! single-engine special case — a one-thread, cap-1 pool behind the same handle API.

use crate::engine::SharedEngine;
use skyline_core::Result;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Callback a pool worker invokes right before a claimed slot's policy evaluation and build,
/// receiving the slot id (registration order). Fault-injection harnesses use this to panic or
/// stall a background build deterministically; the worker's release-on-unwind guard is what
/// keeps such a panic from wedging the slot or leaking the in-flight cap.
pub type BuildHook = Arc<dyn Fn(usize) + Send + Sync>;

/// When a background worker should rebuild an engine's generation.
///
/// Two debts accumulate under sustained writes, and each has a knob:
///
/// * **memory** — tombstoned rows still physically occupy the dataset and block until a
///   compaction reclaims them: [`MaintenancePolicy::dead_row_ratio`];
/// * **latency** — a mutated hybrid engine abandons its IPO tree and serves every query from
///   the slower Adaptive-SFS fallback until the tree is re-materialized:
///   [`MaintenancePolicy::max_mutations_since_rebuild`].
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenancePolicy {
    /// Rebuild when at least this fraction of the block's rows are tombstoned (and at least
    /// one is). `1.0` effectively disables the ratio trigger.
    pub dead_row_ratio: f64,
    /// Rebuild when this many epoch-bumping mutations have been applied since the last swap
    /// (or the build). For a hybrid engine this bounds how long queries stay on the fallback
    /// path; `1` re-materializes after every mutation burst, `u64::MAX` disables the trigger.
    pub max_mutations_since_rebuild: u64,
    /// How often the pool wakes up to evaluate the policy when nobody nudges it.
    pub poll_interval: Duration,
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        Self {
            dead_row_ratio: 0.25,
            max_mutations_since_rebuild: 4096,
            poll_interval: Duration::from_millis(100),
        }
    }
}

impl MaintenancePolicy {
    /// True when the engine's accumulated debt crosses either threshold. Frozen
    /// configurations (no mutation path, hence no debt) are never due; neither is an engine
    /// with a rebuild already in flight.
    pub fn due(&self, engine: &crate::SkylineEngine) -> bool {
        if !engine.supports_mutation() || engine.rebuild_in_flight() {
            return false;
        }
        let Some(block) = engine.point_block() else {
            return false;
        };
        let dead_due = block.dead_count() > 0 && block.dead_ratio() >= self.dead_row_ratio;
        let mutation_due = engine.mutations_since_rebuild() >= self.max_mutations_since_rebuild
            && engine.mutations_since_rebuild() > 0;
        dead_due || mutation_due
    }
}

/// Sizing of a [`BuildPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildPoolConfig {
    /// Build worker threads (clamped to at least 1). More threads only help up to
    /// [`BuildPoolConfig::max_in_flight`].
    pub threads: usize,
    /// Global cap on concurrently running generation builds across **all** registered
    /// engines (clamped to at least 1). Builds are CPU- and allocation-heavy; the cap keeps a
    /// write burst that turns every shard due at once from oversubscribing the machine.
    pub max_in_flight: usize,
    /// How often idle workers re-evaluate every registered engine's policy.
    pub poll_interval: Duration,
}

impl Default for BuildPoolConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            max_in_flight: 1,
            poll_interval: Duration::from_millis(100),
        }
    }
}

#[derive(Debug)]
struct Slot {
    engine: SharedEngine,
    policy: MaintenancePolicy,
    /// A nudge is pending in the queue (dedupes repeated notifies).
    queued: bool,
    /// A pool worker is currently running this slot's build cycle.
    building: bool,
    /// The [`BuildHandle`] was dropped; the slot is never scheduled again.
    detached: bool,
}

#[derive(Debug, Default)]
struct PoolState {
    slots: Vec<Slot>,
    /// Slot ids with a pending nudge, oldest first (per-engine dedupe via `Slot::queued`).
    queue: VecDeque<usize>,
    in_flight: usize,
    shutdown: bool,
}

/// The build hook lives outside the scheduling mutex so installing or reading it never
/// contends with claim/release traffic. Wrapped so `PoolInner` keeps deriving `Debug`.
#[derive(Default)]
struct HookCell(Mutex<Option<BuildHook>>);

impl HookCell {
    fn get(&self) -> Option<BuildHook> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| {
                self.0.clear_poison();
                poisoned.into_inner()
            })
            .clone()
    }

    fn set(&self, hook: Option<BuildHook>) {
        *self.0.lock().unwrap_or_else(|poisoned| {
            self.0.clear_poison();
            poisoned.into_inner()
        }) = hook;
    }
}

impl std::fmt::Debug for HookCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("HookCell")
            .field(&self.get().map(|_| "<hook>"))
            .finish()
    }
}

#[derive(Debug)]
struct PoolInner {
    state: Mutex<PoolState>,
    wake: Condvar,
    max_in_flight: usize,
    poll_interval: Duration,
    hook: HookCell,
    panic_hook: HookCell,
    swap_hook: HookCell,
}

/// Locks the pool's scheduling state, recovering from poison instead of propagating it.
///
/// The only code that can panic while holding this mutex is the heartbeat's policy
/// evaluation (`policy.due(&engine.read())`), which never leaves `PoolState` itself torn —
/// slots, the queue and the in-flight count are all updated before or after the call. A
/// fault-injected build panic must not make every later `notify`/`drop` panic in sympathy.
fn lock_state(inner: &PoolInner) -> MutexGuard<'_, PoolState> {
    inner.state.lock().unwrap_or_else(|poisoned| {
        inner.state.clear_poison();
        poisoned.into_inner()
    })
}

/// A shared pool of background build threads serving many engines (see the module docs).
///
/// Engines join via [`BuildPool::register`] and are served until their [`BuildHandle`] is
/// dropped. Dropping the pool itself shuts the workers down (joining the threads); handles
/// that outlive the pool degrade gracefully — notifies become no-ops, forced rebuilds still
/// run synchronously on the caller.
#[derive(Debug)]
pub struct BuildPool {
    inner: Arc<PoolInner>,
    threads: Vec<JoinHandle<()>>,
}

impl BuildPool {
    /// Spawns the pool's worker threads.
    pub fn new(config: BuildPoolConfig) -> Self {
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState::default()),
            wake: Condvar::new(),
            max_in_flight: config.max_in_flight.max(1),
            poll_interval: config.poll_interval,
            hook: HookCell::default(),
            panic_hook: HookCell::default(),
            swap_hook: HookCell::default(),
        });
        let threads = (0..config.threads.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("skyline-build-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a build pool worker thread")
            })
            .collect();
        Self { inner, threads }
    }

    /// Registers `engine` for background maintenance under `policy` and returns the handle
    /// that nudges it. The pool polls the policy at its own [`BuildPoolConfig::poll_interval`]
    /// (the policy's interval is ignored here — one shared heartbeat, not one per engine).
    pub fn register(
        &self,
        engine: impl Into<SharedEngine>,
        policy: MaintenancePolicy,
    ) -> BuildHandle {
        let engine = engine.into();
        let mut state = lock_state(&self.inner);
        let slot = state.slots.len();
        state.slots.push(Slot {
            engine: engine.clone(),
            policy,
            queued: false,
            building: false,
            detached: false,
        });
        drop(state);
        BuildHandle {
            inner: self.inner.clone(),
            slot,
            engine,
        }
    }

    /// Number of generation builds currently running (diagnostics; racy by nature).
    pub fn in_flight(&self) -> usize {
        lock_state(&self.inner).in_flight
    }

    /// Installs (or with `None`, clears) the [`BuildHook`] every worker calls before a
    /// claimed slot's build cycle. Intended for fault-injection tests; production pools leave
    /// it unset and pay one uncontended mutex read per claim.
    pub fn set_build_hook(&self, hook: Option<BuildHook>) {
        self.inner.hook.set(hook);
    }

    /// Installs (or clears) a hook called with the slot id whenever that slot's build cycle
    /// panics (after the slot has been released and any torn rebuild aborted). A sharded
    /// service uses this to quarantine the shard whose background build died instead of
    /// silently retrying it forever.
    pub fn set_panic_hook(&self, hook: Option<BuildHook>) {
        self.inner.panic_hook.set(hook);
    }

    /// Installs (or clears) a hook called with the slot id right after that slot's build
    /// cycle **installs** a new generation — policy-driven cycles and
    /// [`BuildHandle::force_rebuild`] alike. Skipped and failed cycles never fire it. A
    /// sharded service hangs its post-swap snapshot writes here, so persistence rides the
    /// same background threads as the builds instead of adding latency to any query or
    /// mutation path.
    pub fn set_swap_hook(&self, hook: Option<BuildHook>) {
        self.inner.swap_hook.set(hook);
    }

    /// Number of build worker threads.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }
}

impl Drop for BuildPool {
    fn drop(&mut self) {
        {
            let mut state = lock_state(&self.inner);
            state.shutdown = true;
        }
        self.inner.wake.notify_all();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// One registered engine's handle into a [`BuildPool`]; dropping it detaches the engine (the
/// pool never schedules it again; a build already running completes normally).
#[derive(Debug)]
pub struct BuildHandle {
    inner: Arc<PoolInner>,
    slot: usize,
    engine: SharedEngine,
}

impl BuildHandle {
    /// Nudges the pool to evaluate this engine's policy now instead of waiting for the next
    /// poll tick. Non-blocking and cheap — call it after every mutation.
    pub fn notify(&self) {
        let mut state = lock_state(&self.inner);
        if state.shutdown {
            return;
        }
        let slot = &mut state.slots[self.slot];
        // A nudge during a running build is dropped: mutations landing mid-build are
        // replayed onto the new generation anyway, and leftover debt is caught by the next
        // poll tick.
        if !slot.queued && !slot.building && !slot.detached {
            slot.queued = true;
            let id = self.slot;
            state.queue.push_back(id);
            drop(state);
            self.inner.wake.notify_one();
        }
    }

    /// Runs one rebuild cycle right now, regardless of the policy, and waits for it to
    /// finish — synchronously, on the calling thread, outside the pool's in-flight cap.
    /// Returns `Ok(true)` when a new generation was installed, `Ok(false)` when skipped
    /// because a rebuild was already in flight, and the build error otherwise. Deterministic
    /// tests and pre-traffic warmup hooks use this; steady-state operation relies on the
    /// policy.
    pub fn force_rebuild(&self) -> Result<bool> {
        let installed = run_cycle(&self.engine)?;
        if installed {
            if let Some(on_swap) = self.inner.swap_hook.get() {
                on_swap(self.slot);
            }
        }
        Ok(installed)
    }

    /// The engine this handle maintains.
    pub fn engine(&self) -> &SharedEngine {
        &self.engine
    }
}

impl Drop for BuildHandle {
    fn drop(&mut self) {
        let mut state = lock_state(&self.inner);
        if let Some(slot) = state.slots.get_mut(self.slot) {
            slot.detached = true;
        }
    }
}

/// Restore-on-drop guard for a claimed slot: clears `building`, frees the in-flight cap and
/// wakes a sibling worker even when the build cycle unwinds. Without this, one panicking
/// build (a bug, or an injected fault) would leak `in_flight` forever and silently wedge the
/// whole pool at its cap.
struct SlotRelease<'a> {
    inner: &'a PoolInner,
    id: usize,
}

impl Drop for SlotRelease<'_> {
    fn drop(&mut self) {
        let mut state = lock_state(self.inner);
        state.slots[self.id].building = false;
        state.in_flight -= 1;
        drop(state);
        // A slot may have become runnable (cap freed) — wake a sibling.
        self.inner.wake.notify_one();
    }
}

fn worker_loop(inner: &PoolInner) {
    let mut state = lock_state(inner);
    loop {
        if state.shutdown {
            return;
        }
        // Claim the oldest runnable nudge, respecting the global in-flight cap.
        let runnable = if state.in_flight < inner.max_in_flight {
            state.queue.iter().position(|&id| {
                let slot = &state.slots[id];
                !slot.building && !slot.detached
            })
        } else {
            None
        };
        if let Some(pos) = runnable {
            let id = state.queue.remove(pos).expect("position just found");
            let (engine, policy) = {
                let slot = &mut state.slots[id];
                slot.queued = false;
                slot.building = true;
                (slot.engine.clone(), slot.policy.clone())
            };
            state.in_flight += 1;
            drop(state);
            // Policy evaluation and the build itself run without the pool lock: other
            // workers keep scheduling, notifies never block on a build. The cycle runs under
            // `catch_unwind` so a panicking build kills neither this worker thread nor (via
            // `SlotRelease`) the slot's schedulability; the engine itself stays consistent
            // because `SharedEngine` recovers its lock and a torn rebuild is aborted below.
            let release = SlotRelease { inner, id };
            let hook = inner.hook.get();
            let entered_cycle = std::cell::Cell::new(false);
            let installed = std::cell::Cell::new(false);
            let cycle = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(hook) = &hook {
                    hook(id);
                }
                if policy.due(&engine.read()) {
                    entered_cycle.set(true);
                    if let Ok(true) = run_cycle(&engine) {
                        installed.set(true);
                    }
                }
            }));
            drop(release);
            if installed.get() {
                if let Some(on_swap) = inner.swap_hook.get() {
                    on_swap(id);
                }
            }
            if cycle.is_err() {
                if entered_cycle.get() && engine.read().rebuild_in_flight() {
                    // The panic unwound `rebuild_now` between `begin_rebuild` and the
                    // install; clear the flag or every future cycle no-ops on "already in
                    // flight".
                    engine.write().abort_rebuild();
                }
                if let Some(on_panic) = inner.panic_hook.get() {
                    on_panic(id);
                }
            }
            state = lock_state(inner);
            continue;
        }
        let (guard, timeout) = inner
            .wake
            .wait_timeout(state, inner.poll_interval)
            .unwrap_or_else(|poisoned| {
                inner.state.clear_poison();
                poisoned.into_inner()
            });
        state = guard;
        if timeout.timed_out() {
            // Heartbeat: enqueue every registered engine whose debt crossed its policy.
            let due: Vec<usize> = state
                .slots
                .iter()
                .enumerate()
                .filter(|(_, slot)| {
                    !slot.detached
                        && !slot.queued
                        && !slot.building
                        && slot.policy.due(&slot.engine.read())
                })
                .map(|(id, _)| id)
                .collect();
            for id in due {
                state.slots[id].queued = true;
                state.queue.push_back(id);
            }
        }
    }
}

/// Handle to a running [`MaintenanceWorker`]; dropping it shuts the worker down (joining the
/// thread).
#[derive(Debug)]
pub struct MaintenanceHandle {
    handle: BuildHandle,
    /// Dropped last: joins the worker thread.
    _pool: BuildPool,
}

impl MaintenanceHandle {
    /// Nudges the worker to evaluate its policy now instead of waiting for the next poll
    /// tick. Non-blocking and cheap — call it after every mutation.
    pub fn notify(&self) {
        self.handle.notify();
    }

    /// Runs one rebuild cycle right now, regardless of the policy, and waits for it to
    /// finish. Returns `Ok(true)` when a new generation was installed, `Ok(false)` when
    /// skipped (e.g. a rebuild was already in flight), and the build error otherwise.
    pub fn force_rebuild(&self) -> Result<bool> {
        self.handle.force_rebuild()
    }
}

/// The single-engine background maintenance worker: a one-thread, cap-1 [`BuildPool`] with
/// exactly one registered engine (see the module docs).
pub struct MaintenanceWorker;

impl MaintenanceWorker {
    /// Spawns a dedicated worker thread watching `engine` under `policy` and returns its
    /// handle.
    ///
    /// The worker wakes on every [`MaintenanceHandle::notify`] and at least every
    /// [`MaintenancePolicy::poll_interval`]; when [`MaintenancePolicy::due`] holds it runs one
    /// rebuild cycle. Build errors leave the old generation serving and are retried on the
    /// next due evaluation.
    pub fn spawn(engine: SharedEngine, policy: MaintenancePolicy) -> MaintenanceHandle {
        let pool = BuildPool::new(BuildPoolConfig {
            threads: 1,
            max_in_flight: 1,
            poll_interval: policy.poll_interval,
        });
        let handle = pool.register(engine, policy);
        MaintenanceHandle {
            handle,
            _pool: pool,
        }
    }
}

/// One rebuild cycle; `Ok(false)` when skipped because a rebuild was already in flight.
fn run_cycle(engine: &SharedEngine) -> Result<bool> {
    if engine.read().rebuild_in_flight() {
        return Ok(false);
    }
    engine.rebuild_now().map(|_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, SkylineEngine};
    use skyline_core::{Dataset, Dimension, NominalDomain, Schema, Template};
    use std::sync::Arc;

    fn shared(config: EngineConfig) -> SharedEngine {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", NominalDomain::anonymous(3)),
        ])
        .unwrap();
        let mut data = Dataset::empty(schema.clone());
        for (x, g) in [(3.0, 0), (2.0, 1), (1.0, 2), (5.0, 0), (4.0, 1)] {
            data.push_row_ids(&[x], &[g]).unwrap();
        }
        let template = Template::empty(&schema);
        SharedEngine::new(SkylineEngine::build(Arc::new(data), template, config).unwrap())
    }

    #[test]
    fn policy_triggers_on_either_threshold() {
        let policy = MaintenancePolicy {
            dead_row_ratio: 0.3,
            max_mutations_since_rebuild: 3,
            ..MaintenancePolicy::default()
        };
        let engine = shared(EngineConfig::AdaptiveSfs);
        assert!(!policy.due(&engine.read()), "fresh engines owe nothing");

        // One delete: 1/5 dead < 0.3, 1 mutation < 3 → not due.
        engine.write().delete_row(0).unwrap();
        assert!(!policy.due(&engine.read()));
        // Second delete crosses the dead-row ratio (2/5 ≥ 0.3).
        engine.write().delete_row(1).unwrap();
        assert!(policy.due(&engine.read()));

        // A swap clears the debt.
        engine.rebuild_now().unwrap();
        assert!(!policy.due(&engine.read()));

        // Pure inserts never add dead rows but do cross the mutation threshold.
        for _ in 0..3 {
            engine.write().insert_row(&[9.0], &[0]).unwrap();
        }
        assert!(policy.due(&engine.read()));
    }

    #[test]
    fn policy_ignores_frozen_and_in_flight_engines() {
        let policy = MaintenancePolicy {
            max_mutations_since_rebuild: 1,
            ..MaintenancePolicy::default()
        };
        let frozen = shared(EngineConfig::IpoTree);
        assert!(!policy.due(&frozen.read()));

        let engine = shared(EngineConfig::AdaptiveSfs);
        engine.write().delete_row(0).unwrap();
        assert!(policy.due(&engine.read()));
        let _snapshot = engine.write().begin_rebuild().unwrap();
        assert!(
            !policy.due(&engine.read()),
            "one rebuild in flight is enough"
        );
        engine.write().abort_rebuild();
        assert!(policy.due(&engine.read()));
    }

    #[test]
    fn worker_compacts_when_forced_and_shuts_down_on_drop() {
        let engine = shared(EngineConfig::Hybrid { top_k: 2 });
        engine.write().delete_row(0).unwrap();
        engine.write().delete_row(3).unwrap();
        let handle = MaintenanceWorker::spawn(
            engine.clone(),
            MaintenancePolicy {
                // Thresholds the test never crosses: only the forced cycle may rebuild.
                dead_row_ratio: 1.0,
                max_mutations_since_rebuild: u64::MAX,
                poll_interval: Duration::from_millis(10),
            },
        );
        assert!(handle.force_rebuild().unwrap());
        {
            let engine = engine.read();
            let block = engine.point_block().unwrap();
            assert_eq!(block.len(), block.live_count(), "only live rows remain");
            assert_eq!(engine.generation().id(), 1);
            assert_eq!(engine.maintenance_stats().rebuilds, 1);
            assert_eq!(engine.maintenance_stats().reclaimed_rows, 2);
        }
        drop(handle); // joins the thread
        assert!(!engine.read().rebuild_in_flight());
    }

    #[test]
    fn worker_rebuilds_in_the_background_when_due() {
        let engine = shared(EngineConfig::AdaptiveSfs);
        let handle = MaintenanceWorker::spawn(
            engine.clone(),
            MaintenancePolicy {
                dead_row_ratio: 0.2,
                max_mutations_since_rebuild: u64::MAX,
                poll_interval: Duration::from_millis(5),
            },
        );
        engine.write().delete_row(0).unwrap();
        engine.write().delete_row(1).unwrap();
        handle.notify();
        // The worker races this loop; give it ample time before declaring failure.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if engine.read().maintenance_stats().rebuilds >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "worker never compacted"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let engine_guard = engine.read();
        let block = engine_guard.point_block().unwrap();
        assert_eq!(block.dead_count(), 0);
        assert_eq!(block.len(), 3);
    }

    #[test]
    fn pool_serves_many_engines_under_one_in_flight_cap() {
        let pool = BuildPool::new(BuildPoolConfig {
            threads: 2,
            max_in_flight: 1, // both engines become due together, but builds serialize
            poll_interval: Duration::from_millis(5),
        });
        assert_eq!(pool.threads(), 2);
        let engines: Vec<SharedEngine> =
            (0..2).map(|_| shared(EngineConfig::AdaptiveSfs)).collect();
        let handles: Vec<BuildHandle> = engines
            .iter()
            .map(|e| {
                pool.register(
                    e.clone(),
                    MaintenancePolicy {
                        dead_row_ratio: 0.2,
                        max_mutations_since_rebuild: u64::MAX,
                        poll_interval: Duration::from_millis(5),
                    },
                )
            })
            .collect();
        for (engine, handle) in engines.iter().zip(&handles) {
            engine.write().delete_row(0).unwrap();
            engine.write().delete_row(1).unwrap();
            handle.notify();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while engines
            .iter()
            .any(|e| e.read().maintenance_stats().rebuilds == 0)
        {
            assert!(
                std::time::Instant::now() < deadline,
                "pool never compacted every engine"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        for engine in &engines {
            assert_eq!(engine.read().point_block().unwrap().dead_count(), 0);
        }
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn panicking_build_releases_slot_and_keeps_worker_alive() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let pool = BuildPool::new(BuildPoolConfig {
            threads: 1, // one worker: if the panic killed it, nothing would ever build again
            max_in_flight: 1,
            poll_interval: Duration::from_millis(5),
        });
        let attempts = Arc::new(AtomicUsize::new(0));
        pool.set_build_hook(Some(Arc::new({
            let attempts = attempts.clone();
            move |_slot| {
                // First claimed cycle dies mid-build; every later one succeeds.
                if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("injected build fault");
                }
            }
        })));
        let engine = shared(EngineConfig::AdaptiveSfs);
        let handle = pool.register(
            engine.clone(),
            MaintenancePolicy {
                dead_row_ratio: 0.1,
                max_mutations_since_rebuild: u64::MAX,
                poll_interval: Duration::from_millis(5),
            },
        );
        engine.write().delete_row(0).unwrap();
        engine.write().delete_row(1).unwrap();
        handle.notify();
        // The first cycle panics; the drop guard must release the slot and the in-flight
        // cap, the worker must survive, and the still-due engine must be rebuilt by a
        // later cycle (heartbeat or this nudge).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while engine.read().maintenance_stats().rebuilds == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "panicking build wedged the pool (attempts: {})",
                attempts.load(Ordering::SeqCst)
            );
            handle.notify();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            attempts.load(Ordering::SeqCst) >= 2,
            "hook panicked then reran"
        );
        assert_eq!(pool.in_flight(), 0, "in-flight count restored on unwind");
        assert!(!engine.read().rebuild_in_flight());
        assert_eq!(engine.read().point_block().unwrap().dead_count(), 0);
        // The pool keeps functioning for explicitly forced cycles too.
        engine.write().delete_row(2).unwrap();
        assert!(handle.force_rebuild().unwrap());
    }

    #[test]
    fn dropped_handles_detach_their_engine() {
        let pool = BuildPool::new(BuildPoolConfig {
            threads: 1,
            max_in_flight: 1,
            poll_interval: Duration::from_millis(5),
        });
        let abandoned = shared(EngineConfig::AdaptiveSfs);
        let kept = shared(EngineConfig::AdaptiveSfs);
        let eager = MaintenancePolicy {
            dead_row_ratio: 0.1,
            max_mutations_since_rebuild: u64::MAX,
            poll_interval: Duration::from_millis(5),
        };
        let dropped = pool.register(abandoned.clone(), eager.clone());
        let handle = pool.register(kept.clone(), eager);
        drop(dropped);
        // Both engines become due; only the still-attached one may be rebuilt.
        abandoned.write().delete_row(0).unwrap();
        kept.write().delete_row(0).unwrap();
        handle.notify();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while kept.read().maintenance_stats().rebuilds == 0 {
            assert!(std::time::Instant::now() < deadline, "pool never rebuilt");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Give the poll loop a few more ticks: the detached engine must stay untouched.
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(abandoned.read().maintenance_stats().rebuilds, 0);
        // A detached handle's forced rebuild still works (it runs on the caller).
    }
}
