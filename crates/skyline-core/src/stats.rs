//! Skyline statistics reported in the paper's figures (the "(d)" panels).
//!
//! For a template `R` and a query preference `R̃′` the paper tracks three ratios:
//!
//! * `|SKY(R)| / |D|` — how much of the data set survives the template skyline;
//! * `|AFFECT(R)| / |SKY(R)|` — the fraction of template skyline points that carry at least
//!   one value listed in the query preference (these are the points Adaptive SFS has to
//!   re-rank);
//! * `|SKY(R̃′)| / |SKY(R)|` — how much the query preference shrinks the skyline.

use crate::dataset::Dataset;
use crate::order::Preference;
use crate::value::PointId;

/// The three ratios of the figures' "(d)" panels, plus the raw counts they derive from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkylineStats {
    /// `|D|`: number of points in the dataset.
    pub dataset_size: usize,
    /// `|SKY(R)|`: size of the template skyline.
    pub template_skyline: usize,
    /// `|AFFECT(R)|`: template skyline points carrying a value listed in the query preference.
    pub affected: usize,
    /// `|SKY(R̃′)|`: size of the query skyline.
    pub query_skyline: usize,
}

impl SkylineStats {
    /// `|SKY(R)| / |D|` as a percentage.
    pub fn template_skyline_pct(&self) -> f64 {
        percentage(self.template_skyline, self.dataset_size)
    }

    /// `|AFFECT(R)| / |SKY(R)|` as a percentage.
    pub fn affected_pct(&self) -> f64 {
        percentage(self.affected, self.template_skyline)
    }

    /// `|SKY(R̃′)| / |SKY(R)|` as a percentage.
    pub fn query_skyline_pct(&self) -> f64 {
        percentage(self.query_skyline, self.template_skyline)
    }
}

fn percentage(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        100.0 * numerator as f64 / denominator as f64
    }
}

/// The points of `skyline` that contain at least one nominal value listed in `pref`
/// (the paper's `AFFECT(R)` set).
pub fn affected_points(data: &Dataset, skyline: &[PointId], pref: &Preference) -> Vec<PointId> {
    skyline
        .iter()
        .copied()
        .filter(|&p| {
            (0..data.schema().nominal_count()).any(|j| pref.dim(j).contains(data.nominal(p, j)))
        })
        .collect()
}

/// Assembles a [`SkylineStats`] from the raw ingredients.
pub fn collect_stats(
    data: &Dataset,
    template_skyline: &[PointId],
    query_skyline: &[PointId],
    pref: &Preference,
) -> SkylineStats {
    SkylineStats {
        dataset_size: data.len(),
        template_skyline: template_skyline.len(),
        affected: affected_points(data, template_skyline, pref).len(),
        query_skyline: query_skyline.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::order::ImplicitPreference;
    use crate::schema::{Dimension, Schema};

    fn data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal_with_labels("g", ["a", "b", "c"]),
            Dimension::nominal_with_labels("h", ["p", "q"]),
        ])
        .unwrap();
        Dataset::from_columns(
            schema,
            vec![vec![1.0, 2.0, 3.0, 4.0]],
            vec![vec![0, 1, 2, 0], vec![0, 1, 0, 1]],
        )
        .unwrap()
    }

    #[test]
    fn affected_points_checks_any_dimension() {
        let data = data();
        let pref = Preference::from_dims(vec![
            ImplicitPreference::new([1]).unwrap(),
            ImplicitPreference::new([1]).unwrap(),
        ]);
        // Points 1 (g=b) and 3 (h=q) carry listed values; 1 carries both.
        assert_eq!(affected_points(&data, &[0, 1, 2, 3], &pref), vec![1, 3]);
        assert_eq!(
            affected_points(&data, &[0, 2], &pref),
            Vec::<PointId>::new()
        );
    }

    #[test]
    fn ratios_are_percentages() {
        let data = data();
        let pref = Preference::from_dims(vec![
            ImplicitPreference::new([0]).unwrap(),
            ImplicitPreference::none(),
        ]);
        let stats = collect_stats(&data, &[0, 1, 2, 3], &[0, 1], &pref);
        assert_eq!(stats.dataset_size, 4);
        assert_eq!(stats.template_skyline, 4);
        assert_eq!(stats.affected, 2); // points 0 and 3 have g = a
        assert_eq!(stats.query_skyline, 2);
        assert!((stats.template_skyline_pct() - 100.0).abs() < 1e-9);
        assert!((stats.affected_pct() - 50.0).abs() < 1e-9);
        assert!((stats.query_skyline_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_denominators_do_not_divide_by_zero() {
        let stats = SkylineStats {
            dataset_size: 0,
            template_skyline: 0,
            affected: 0,
            query_skyline: 0,
        };
        assert_eq!(stats.template_skyline_pct(), 0.0);
        assert_eq!(stats.affected_pct(), 0.0);
        assert_eq!(stats.query_skyline_pct(), 0.0);
    }
}
