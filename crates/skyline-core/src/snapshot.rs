//! Persistent binary snapshot container: the versioned, checksummed on-disk format that
//! lets an engine cold-start by **loading** its preprocessed structures instead of
//! recomputing them from raw rows.
//!
//! # Format
//!
//! One snapshot is a single contiguous buffer:
//!
//! | bytes            | content                                                    |
//! |------------------|------------------------------------------------------------|
//! | `0..8`           | magic `b"SKYSNAP\0"`                                       |
//! | `8..12`          | format version (`u32` LE, currently 1)                     |
//! | `12..16`         | section count (`u32` LE)                                   |
//! | `16..20`         | CRC-32 of the section table (`u32` LE)                     |
//! | `20..24`         | reserved (zero)                                            |
//! | `24..24 + n·24`  | section table: `id: u32, crc: u32, offset: u64, len: u64`  |
//! | …                | section payloads, each starting at an 8-byte-aligned offset |
//!
//! Every integer is little-endian. Section payloads are the raw arrays the in-memory
//! structures are made of — the numeric column block is a plain `f64` array, the nominal
//! block a plain `u16` array — so loading is one bounds- and alignment-checked pass over
//! the buffer with bulk fixed-width decoding (which the compiler vectorizes into wide
//! copies), not a field-by-field walk through a self-describing encoding. Section offsets
//! are **required** to be 8-byte aligned within the buffer; [`SnapshotView::parse`] rejects
//! misaligned tables so the bulk decode never straddles an element boundary.
//!
//! Integrity is layered: the table CRC covers the section table, and each section carries
//! its own CRC-32 over its payload, all verified eagerly at [`SnapshotView::parse`] time.
//! Any corruption — byte flips, truncation, a bumped version — surfaces as a
//! [`SnapshotError`]; parsing never panics and a snapshot that fails its checksums is
//! never partially served.
//!
//! This module owns the container plus the codecs for the core types ([`Schema`],
//! [`Template`], [`PointBlock`]) and the shared primitives ([`ByteWriter`],
//! [`ByteReader`], delta-encoded vbyte posting lists). Higher layers add their own
//! sections: `skyline-ipo` encodes the IPO tree ([`SECTION_IPO_TREE`]), `skyline-adaptive`
//! the sorted list ([`SECTION_ASFS_ENTRIES`]), and the `skyline` engine the generation
//! metadata ([`SECTION_ENGINE_META`]) tying them together.

use crate::dataset::Dataset;
use crate::error::SkylineError;
use crate::kernel::PointBlock;
use crate::order::{ImplicitPreference, PartialOrder, Preference, Template};
use crate::schema::{Dimension, Schema};
use crate::value::{PointId, ValueId};
use std::fmt;
use std::path::Path;

/// Magic bytes at offset 0 of every snapshot.
pub const MAGIC: [u8; 8] = *b"SKYSNAP\0";

/// Current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;

/// Byte alignment every section payload starts at.
pub const SECTION_ALIGN: usize = 8;

const HEADER_LEN: usize = 24;
const TABLE_ENTRY_LEN: usize = 24;
/// Backstop against absurd section counts in corrupted headers (a real snapshot has < 16).
const MAX_SECTIONS: u32 = 1024;

/// Engine-level generation metadata (config tag, generation id, epochs). Opaque to this
/// crate; written and read by the `skyline` engine.
pub const SECTION_ENGINE_META: u32 = 1;
/// [`Schema`] codec payload ([`encode_schema`] / [`decode_schema`]).
pub const SECTION_SCHEMA: u32 = 2;
/// [`Template`] codec payload ([`encode_template`] / [`decode_template`]).
pub const SECTION_TEMPLATE: u32 = 3;
/// Fixed-width [`PointBlock`] header: row count, dimension counts, epoch, live count.
pub const SECTION_BLOCK_HEADER: u32 = 4;
/// The block's interleaved numeric values as a raw little-endian `f64` array.
pub const SECTION_BLOCK_NUMERICS: u32 = 5;
/// The block's interleaved nominal value ids as a raw little-endian `u16` array.
pub const SECTION_BLOCK_NOMINALS: u32 = 6;
/// Per-nominal-dimension maximum value ids (`u16` array).
pub const SECTION_BLOCK_MAX_VALUES: u32 = 7;
/// Row liveness as a `u64`-word bitset (bit `p` set ⇔ row `p` live).
pub const SECTION_BLOCK_LIVENESS: u32 = 8;
/// Adaptive-SFS sorted list entries. Opaque to this crate; written by `skyline-adaptive`.
pub const SECTION_ASFS_ENTRIES: u32 = 9;
/// IPO tree payload. Opaque to this crate; written and read by `skyline-ipo`.
pub const SECTION_IPO_TREE: u32 = 10;

/// Errors raised while writing, parsing or decoding a snapshot.
///
/// Corrupt input of any shape — flipped bytes, truncation, a version from the future —
/// must land here; snapshot code never panics on untrusted bytes and never yields a
/// structure that fails its integrity checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with [`MAGIC`] (not a snapshot at all).
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The buffer ends before the structure it claims to hold (truncated file).
    Truncated {
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A CRC-32 check failed (section id 0 denotes the section table itself).
    ChecksumMismatch {
        /// Section whose checksum failed.
        section: u32,
    },
    /// A section offset violates the [`SECTION_ALIGN`] layout invariant.
    Misaligned {
        /// The offending section id.
        section: u32,
        /// Its (misaligned) offset.
        offset: u64,
    },
    /// The section table lists the same id twice.
    DuplicateSection(u32),
    /// A required section is absent.
    MissingSection(u32),
    /// The container is intact but a payload fails structural validation.
    Corrupt(String),
    /// Filesystem-level failure while reading or writing the snapshot.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a skyline snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads {supported})"
            ),
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needs {needed} bytes but only {available} are available"
            ),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot checksum mismatch in section {section}")
            }
            SnapshotError::Misaligned { section, offset } => write!(
                f,
                "snapshot section {section} starts at misaligned offset {offset}"
            ),
            SnapshotError::DuplicateSection(id) => {
                write!(f, "snapshot lists section {id} more than once")
            }
            SnapshotError::MissingSection(id) => {
                write!(f, "snapshot is missing required section {id}")
            }
            SnapshotError::Corrupt(msg) => write!(f, "snapshot payload corrupt: {msg}"),
            SnapshotError::Io(msg) => write!(f, "snapshot i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapshotError> for SkylineError {
    fn from(err: SnapshotError) -> Self {
        SkylineError::Snapshot(err.to_string())
    }
}

impl From<SkylineError> for SnapshotError {
    /// Validating constructors ([`Schema::new`], [`Dataset::from_columns`],
    /// [`PartialOrder::from_pairs`], …) reject corrupt payloads with a [`SkylineError`];
    /// inside the snapshot decode path that *is* a corruption report.
    fn from(err: SkylineError) -> Self {
        SnapshotError::Corrupt(err.to_string())
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — hand-rolled table so the format needs no deps.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the checksum every section and the table are covered by.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Container: builder + parsed view
// ---------------------------------------------------------------------------

/// Assembles a snapshot buffer from `(id, payload)` sections (the write path).
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one section. Ids must be unique; a duplicate is a caller bug and panics.
    pub fn section(&mut self, id: u32, payload: Vec<u8>) -> &mut Self {
        assert!(
            self.sections.iter().all(|(existing, _)| *existing != id),
            "snapshot section {id} added twice"
        );
        self.sections.push((id, payload));
        self
    }

    /// Serializes header, checksummed section table and 8-aligned payloads.
    pub fn finish(self) -> Vec<u8> {
        let table_len = self.sections.len() * TABLE_ENTRY_LEN;
        let mut offset = HEADER_LEN + table_len;
        let mut table = Vec::with_capacity(table_len);
        let mut entries = Vec::with_capacity(self.sections.len());
        for (id, payload) in &self.sections {
            offset = offset.next_multiple_of(SECTION_ALIGN);
            entries.push((*id, crc32(payload), offset as u64, payload.len() as u64));
            offset += payload.len();
        }
        for (id, crc, off, len) in &entries {
            table.extend_from_slice(&id.to_le_bytes());
            table.extend_from_slice(&crc.to_le_bytes());
            table.extend_from_slice(&off.to_le_bytes());
            table.extend_from_slice(&len.to_le_bytes());
        }
        let mut buf = Vec::with_capacity(offset);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&table).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&table);
        for ((_, payload), (_, _, off, _)) in self.sections.iter().zip(&entries) {
            buf.resize(*off as usize, 0);
            buf.extend_from_slice(payload);
        }
        buf
    }
}

/// A parsed, fully checksum-verified view over one contiguous snapshot buffer (the load
/// path). Section accessors return subslices of the original buffer — no copies.
#[derive(Debug)]
pub struct SnapshotView<'a> {
    buf: &'a [u8],
    /// `(id, offset, len)` per section, checksum-verified at parse time.
    table: Vec<(u32, usize, usize)>,
}

impl<'a> SnapshotView<'a> {
    /// Parses and verifies `buf`: magic, version, table CRC, per-section bounds, alignment
    /// and CRCs. After this returns `Ok`, every section payload is known-intact.
    pub fn parse(buf: &'a [u8]) -> Result<Self, SnapshotError> {
        if buf.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                needed: HEADER_LEN,
                available: buf.len(),
            });
        }
        if buf[0..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("4-byte slice"));
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = u32::from_le_bytes(buf[12..16].try_into().expect("4-byte slice"));
        if count > MAX_SECTIONS {
            return Err(SnapshotError::Corrupt(format!(
                "section count {count} exceeds the format maximum {MAX_SECTIONS}"
            )));
        }
        let table_crc = u32::from_le_bytes(buf[16..20].try_into().expect("4-byte slice"));
        if buf[20..24] != [0, 0, 0, 0] {
            return Err(SnapshotError::Corrupt(
                "reserved header bytes must be zero".into(),
            ));
        }
        let table_len = count as usize * TABLE_ENTRY_LEN;
        let table_end = HEADER_LEN + table_len;
        if buf.len() < table_end {
            return Err(SnapshotError::Truncated {
                needed: table_end,
                available: buf.len(),
            });
        }
        let table_bytes = &buf[HEADER_LEN..table_end];
        if crc32(table_bytes) != table_crc {
            return Err(SnapshotError::ChecksumMismatch { section: 0 });
        }
        let mut table = Vec::with_capacity(count as usize);
        for entry in table_bytes.chunks_exact(TABLE_ENTRY_LEN) {
            let id = u32::from_le_bytes(entry[0..4].try_into().expect("4-byte slice"));
            let crc = u32::from_le_bytes(entry[4..8].try_into().expect("4-byte slice"));
            let offset = u64::from_le_bytes(entry[8..16].try_into().expect("8-byte slice"));
            let len = u64::from_le_bytes(entry[16..24].try_into().expect("8-byte slice"));
            if table.iter().any(|(existing, _, _)| *existing == id) {
                return Err(SnapshotError::DuplicateSection(id));
            }
            if offset % SECTION_ALIGN as u64 != 0 {
                return Err(SnapshotError::Misaligned {
                    section: id,
                    offset,
                });
            }
            let end = offset
                .checked_add(len)
                .ok_or(SnapshotError::Corrupt(format!(
                    "section {id} offset + length overflows"
                )))?;
            if end > buf.len() as u64 {
                return Err(SnapshotError::Truncated {
                    needed: end as usize,
                    available: buf.len(),
                });
            }
            let payload = &buf[offset as usize..end as usize];
            if crc32(payload) != crc {
                return Err(SnapshotError::ChecksumMismatch { section: id });
            }
            table.push((id, offset as usize, len as usize));
        }
        // Every byte outside the header, table and payloads must be zero padding, and the
        // buffer must end exactly where the last section does — so a flip in an alignment
        // gap or bytes appended past the end are corruption, not slack no checksum covers.
        let mut covered: Vec<(usize, usize)> = table
            .iter()
            .map(|&(_, offset, len)| (offset, offset + len))
            .collect();
        covered.push((0, table_end));
        covered.sort_unstable();
        let mut cursor = 0usize;
        for (start, end) in covered {
            if start > cursor && buf[cursor..start].iter().any(|&b| b != 0) {
                return Err(SnapshotError::Corrupt(
                    "alignment padding bytes must be zero".into(),
                ));
            }
            cursor = cursor.max(end);
        }
        if cursor != buf.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the last section",
                buf.len() - cursor
            )));
        }
        Ok(Self { buf, table })
    }

    /// The verified payload of section `id`.
    pub fn section(&self, id: u32) -> Result<&'a [u8], SnapshotError> {
        self.table
            .iter()
            .find(|(existing, _, _)| *existing == id)
            .map(|&(_, offset, len)| &self.buf[offset..offset + len])
            .ok_or(SnapshotError::MissingSection(id))
    }

    /// True when section `id` is present.
    pub fn has_section(&self, id: u32) -> bool {
        self.table.iter().any(|(existing, _, _)| *existing == id)
    }

    /// The section ids present, in table order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.table.iter().map(|&(id, _, _)| id).collect()
    }
}

// ---------------------------------------------------------------------------
// Fixed-width byte primitives
// ---------------------------------------------------------------------------

/// Little-endian byte sink for section payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` LE.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` LE.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` LE.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` LE.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a raw `u16` array (no length prefix — callers know the count).
    pub fn put_u16_slice(&mut self, values: &[ValueId]) {
        self.buf.reserve(values.len() * 2);
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a raw `f64` array (no length prefix — callers know the count).
    pub fn put_f64_slice(&mut self, values: &[f64]) {
        self.buf.reserve(values.len() * 8);
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a variable-length base-128 integer (vbyte / LEB128).
    pub fn put_vbyte(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Appends a strictly increasing id list as a delta-encoded vbyte posting list:
    /// vbyte count, then the vbyte gap to the previous id (first gap from −1). This is the
    /// compressed carrier for every sorted [`PointId`] set in the snapshot (IPO
    /// disqualified sets, skylines).
    pub fn put_postings(&mut self, ids: &[PointId]) {
        self.put_vbyte(ids.len() as u64);
        let mut prev: i64 = -1;
        for &id in ids {
            let delta = id as i64 - prev;
            assert!(delta > 0, "posting lists must be strictly increasing");
            self.put_vbyte(delta as u64);
            prev = id as i64;
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked little-endian cursor over a section payload. Every accessor returns
/// [`SnapshotError::Truncated`] instead of panicking when the payload runs out.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SnapshotError::Corrupt("length overflow".into()))?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated {
                needed: end,
                available: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16` LE.
    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2-byte slice"),
        ))
    }

    /// Reads a `u32` LE.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }

    /// Reads a `u64` LE.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }

    /// Reads an `f64` LE.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("string payload is not UTF-8".into()))
    }

    /// Bulk-reads `count` `u16`s.
    pub fn get_u16_vec(&mut self, count: usize) -> Result<Vec<ValueId>, SnapshotError> {
        let bytes = self.take(
            count
                .checked_mul(2)
                .ok_or(SnapshotError::Corrupt("u16 array length overflow".into()))?,
        )?;
        Ok(decode_u16_slice(bytes))
    }

    /// Bulk-reads `count` `f64`s.
    pub fn get_f64_vec(&mut self, count: usize) -> Result<Vec<f64>, SnapshotError> {
        let bytes = self.take(
            count
                .checked_mul(8)
                .ok_or(SnapshotError::Corrupt("f64 array length overflow".into()))?,
        )?;
        Ok(decode_f64_slice(bytes))
    }

    /// Reads a vbyte integer (rejects encodings longer than a `u64`).
    pub fn get_vbyte(&mut self) -> Result<u64, SnapshotError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(SnapshotError::Corrupt("vbyte integer overflows u64".into()));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a delta-encoded vbyte posting list, validating strict monotonicity and the
    /// [`PointId`] range. `max_len` bounds the decoded length so a corrupt count cannot
    /// trigger an absurd allocation.
    pub fn get_postings(&mut self, max_len: usize) -> Result<Vec<PointId>, SnapshotError> {
        let count = self.get_vbyte()? as usize;
        if count > max_len {
            return Err(SnapshotError::Corrupt(format!(
                "posting list claims {count} ids but at most {max_len} are possible"
            )));
        }
        let mut ids = Vec::with_capacity(count);
        let mut prev: i64 = -1;
        for _ in 0..count {
            let delta = self.get_vbyte()?;
            if delta == 0 {
                return Err(SnapshotError::Corrupt(
                    "posting list gap of zero (ids not strictly increasing)".into(),
                ));
            }
            let id = prev
                .checked_add_unsigned(delta)
                .filter(|&id| id <= PointId::MAX as i64)
                .ok_or(SnapshotError::Corrupt(
                    "posting list id overflows PointId".into(),
                ))?;
            ids.push(id as PointId);
            prev = id;
        }
        Ok(ids)
    }

    /// Unread bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was fully consumed — trailing garbage is corruption, not slack.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Bulk `u16` LE decode; `chunks_exact` lets the compiler turn this into wide copies.
fn decode_u16_slice(bytes: &[u8]) -> Vec<ValueId> {
    bytes
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes(c.try_into().expect("2-byte chunk")))
        .collect()
}

/// Bulk `f64` LE decode; `chunks_exact` lets the compiler turn this into wide copies.
fn decode_f64_slice(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

// ---------------------------------------------------------------------------
// Core-type codecs: Schema, Template, PointBlock
// ---------------------------------------------------------------------------

const KIND_NUMERIC: u8 = 0;
const KIND_NOMINAL: u8 = 1;

/// Encodes a [`Schema`] (dimension names, kinds and nominal label dictionaries).
pub fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(schema.arity() as u32);
    for dim in schema.dimensions() {
        match dim.domain() {
            None => {
                w.put_u8(KIND_NUMERIC);
                w.put_str(dim.name());
            }
            Some(domain) => {
                w.put_u8(KIND_NOMINAL);
                w.put_str(dim.name());
                w.put_u32(domain.cardinality() as u32);
                for (_, label) in domain.iter() {
                    w.put_str(label);
                }
            }
        }
    }
    w.into_inner()
}

/// Decodes a [`Schema`] written by [`encode_schema`].
pub fn decode_schema(bytes: &[u8]) -> Result<Schema, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let arity = r.get_u32()? as usize;
    if arity > bytes.len() {
        // Every dimension costs at least one kind byte; reject absurd counts up front.
        return Err(SnapshotError::Corrupt(format!(
            "schema claims {arity} dimensions in a {}-byte payload",
            bytes.len()
        )));
    }
    let mut dims = Vec::with_capacity(arity);
    for _ in 0..arity {
        let kind = r.get_u8()?;
        let name = r.get_str()?;
        match kind {
            KIND_NUMERIC => dims.push(Dimension::numeric(name)),
            KIND_NOMINAL => {
                let cardinality = r.get_u32()? as usize;
                if cardinality > u16::MAX as usize + 1 {
                    return Err(SnapshotError::Corrupt(format!(
                        "nominal cardinality {cardinality} exceeds the ValueId range"
                    )));
                }
                let mut labels = Vec::with_capacity(cardinality);
                for _ in 0..cardinality {
                    labels.push(r.get_str()?);
                }
                let domain = crate::value::NominalDomain::from_labels(labels);
                if domain.cardinality() != cardinality {
                    return Err(SnapshotError::Corrupt(format!(
                        "nominal domain of `{name}` lists duplicate labels"
                    )));
                }
                dims.push(Dimension::nominal(name, domain));
            }
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown dimension kind tag {other}"
                )))
            }
        }
    }
    r.expect_end()?;
    Ok(Schema::new(dims)?)
}

const TEMPLATE_GENERAL: u8 = 0;
const TEMPLATE_IMPLICIT: u8 = 1;

/// Encodes a [`Template`], preserving its form: an implicit-form template round-trips
/// through its per-dimension choice lists, a general one through its explicit pair sets.
pub fn encode_template(template: &Template) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match template.implicit() {
        Some(pref) => {
            w.put_u8(TEMPLATE_IMPLICIT);
            w.put_u32(pref.nominal_count() as u32);
            for dim in pref.dims() {
                w.put_u32(dim.choices().len() as u32);
                w.put_u16_slice(dim.choices());
            }
        }
        None => {
            w.put_u8(TEMPLATE_GENERAL);
            w.put_u32(template.orders().len() as u32);
            for order in template.orders() {
                w.put_u32(order.cardinality() as u32);
                w.put_u32(order.pair_count() as u32);
                for (u, v) in order.pairs() {
                    w.put_u16(u);
                    w.put_u16(v);
                }
            }
        }
    }
    w.into_inner()
}

/// Decodes a [`Template`] written by [`encode_template`], re-deriving the dominance
/// closures through the same validating constructors a fresh build uses.
pub fn decode_template(schema: &Schema, bytes: &[u8]) -> Result<Template, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let form = r.get_u8()?;
    let count = r.get_u32()? as usize;
    if count != schema.nominal_count() {
        return Err(SnapshotError::Corrupt(format!(
            "template covers {count} nominal dimensions but the schema has {}",
            schema.nominal_count()
        )));
    }
    let template = match form {
        TEMPLATE_IMPLICIT => {
            let mut dims = Vec::with_capacity(count);
            for _ in 0..count {
                let choices = r.get_u32()? as usize;
                let values = r.get_u16_vec(choices)?;
                dims.push(ImplicitPreference::new(values)?);
            }
            Template::from_preference(schema, Preference::from_dims(dims))?
        }
        TEMPLATE_GENERAL => {
            let mut orders = Vec::with_capacity(count);
            for _ in 0..count {
                let cardinality = r.get_u32()? as usize;
                let pair_count = r.get_u32()? as usize;
                if pair_count > cardinality.saturating_mul(cardinality) {
                    return Err(SnapshotError::Corrupt(format!(
                        "order lists {pair_count} pairs over a cardinality-{cardinality} domain"
                    )));
                }
                let mut pairs = Vec::with_capacity(pair_count);
                for _ in 0..pair_count {
                    pairs.push((r.get_u16()?, r.get_u16()?));
                }
                orders.push(PartialOrder::from_pairs(cardinality, pairs)?);
            }
            Template::from_partial_orders(schema, orders)?
        }
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown template form tag {other}"
            )))
        }
    };
    r.expect_end()?;
    Ok(template)
}

/// Writes the four [`PointBlock`] sections (header, numeric array, nominal array,
/// max-value array) plus the liveness bitset into `builder`.
pub fn write_block_sections(block: &PointBlock, builder: &mut SnapshotBuilder) {
    let mut header = ByteWriter::new();
    header.put_u64(block.len() as u64);
    header.put_u32(block.numeric_dims() as u32);
    header.put_u32(block.nominal_dims() as u32);
    header.put_u64(block.epoch().get());
    header.put_u64(block.live_count() as u64);
    builder.section(SECTION_BLOCK_HEADER, header.into_inner());

    let mut nums = ByteWriter::new();
    nums.put_f64_slice(block.numeric_values());
    builder.section(SECTION_BLOCK_NUMERICS, nums.into_inner());

    let mut noms = ByteWriter::new();
    noms.put_u16_slice(block.nominal_values());
    builder.section(SECTION_BLOCK_NOMINALS, noms.into_inner());

    let mut max = ByteWriter::new();
    max.put_u16_slice(block.max_values());
    builder.section(SECTION_BLOCK_MAX_VALUES, max.into_inner());

    let mut live = ByteWriter::new();
    let mut word = 0u64;
    for (p, alive) in block.liveness().iter().enumerate() {
        if *alive {
            word |= 1 << (p % 64);
        }
        if p % 64 == 63 {
            live.put_u64(word);
            word = 0;
        }
    }
    if !block.len().is_multiple_of(64) {
        live.put_u64(word);
    }
    builder.section(SECTION_BLOCK_LIVENESS, live.into_inner());
}

/// Reconstructs a [`PointBlock`] from the sections written by [`write_block_sections`],
/// restoring its [`crate::DatasetEpoch`] so epoch-tagged artifacts keep composing.
pub fn read_block(view: &SnapshotView<'_>) -> Result<PointBlock, SnapshotError> {
    let mut header = ByteReader::new(view.section(SECTION_BLOCK_HEADER)?);
    let len = header.get_u64()? as usize;
    let numeric_dims = header.get_u32()? as usize;
    let nominal_dims = header.get_u32()? as usize;
    let epoch = header.get_u64()?;
    let live_len = header.get_u64()? as usize;
    header.expect_end()?;
    if len > PointId::MAX as usize {
        return Err(SnapshotError::Corrupt(format!(
            "block claims {len} rows, beyond the PointId range"
        )));
    }
    if live_len > len {
        return Err(SnapshotError::Corrupt(format!(
            "block claims {live_len} live rows out of {len}"
        )));
    }

    let nums_bytes = view.section(SECTION_BLOCK_NUMERICS)?;
    let expect = |name: &str, got: usize, want: usize| -> Result<(), SnapshotError> {
        if got != want {
            return Err(SnapshotError::Corrupt(format!(
                "{name} section holds {got} bytes but the header implies {want}"
            )));
        }
        Ok(())
    };
    expect(
        "numeric",
        nums_bytes.len(),
        len.checked_mul(numeric_dims)
            .and_then(|n| n.checked_mul(8))
            .ok_or(SnapshotError::Corrupt("numeric array overflows".into()))?,
    )?;
    let nums = decode_f64_slice(nums_bytes);

    let noms_bytes = view.section(SECTION_BLOCK_NOMINALS)?;
    expect(
        "nominal",
        noms_bytes.len(),
        len.checked_mul(nominal_dims)
            .and_then(|n| n.checked_mul(2))
            .ok_or(SnapshotError::Corrupt("nominal array overflows".into()))?,
    )?;
    let noms = decode_u16_slice(noms_bytes);

    let max_bytes = view.section(SECTION_BLOCK_MAX_VALUES)?;
    expect("max-value", max_bytes.len(), nominal_dims * 2)?;
    let max_value = decode_u16_slice(max_bytes);
    if nominal_dims > 0 {
        // The block invariant: max_value[j] is the max over all physical rows. Compiled
        // orders validate their cardinality against it, so an understated bound in a
        // checksum-colliding payload could send a value id past an order's closure table.
        let mut computed = vec![ValueId::default(); nominal_dims];
        for row in noms.chunks_exact(nominal_dims) {
            for (m, &v) in computed.iter_mut().zip(row) {
                *m = (*m).max(v);
            }
        }
        if computed != max_value {
            return Err(SnapshotError::Corrupt(
                "per-dimension max-value bounds do not match the nominal array".into(),
            ));
        }
    }

    let live_bytes = view.section(SECTION_BLOCK_LIVENESS)?;
    expect("liveness", live_bytes.len(), len.div_ceil(64) * 8)?;
    let mut live = Vec::with_capacity(len);
    for (w, chunk) in live_bytes.chunks_exact(8).enumerate() {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let bits = (len - w * 64).min(64);
        if bits < 64 && word >> bits != 0 {
            return Err(SnapshotError::Corrupt(
                "liveness bitset sets bits beyond the row count".into(),
            ));
        }
        for b in 0..bits {
            live.push(word & (1 << b) != 0);
        }
    }
    let counted = live.iter().filter(|&&l| l).count();
    if counted != live_len {
        return Err(SnapshotError::Corrupt(format!(
            "liveness bitset counts {counted} live rows but the header claims {live_len}"
        )));
    }
    Ok(PointBlock::from_parts(
        len,
        numeric_dims,
        nominal_dims,
        nums,
        noms,
        max_value,
        live,
        epoch,
    ))
}

/// Rebuilds the columnar [`Dataset`] by transposing a decoded block — the snapshot never
/// stores the data twice. Goes through [`Dataset::from_columns`], so out-of-domain values
/// in a corrupt (but checksum-colliding) payload are still rejected.
pub fn dataset_from_block(schema: &Schema, block: &PointBlock) -> Result<Dataset, SnapshotError> {
    if schema.numeric_count() != block.numeric_dims()
        || schema.nominal_count() != block.nominal_dims()
    {
        return Err(SnapshotError::Corrupt(format!(
            "schema has {}+{} dimensions but the block was built for {}+{}",
            schema.numeric_count(),
            schema.nominal_count(),
            block.numeric_dims(),
            block.nominal_dims()
        )));
    }
    let len = block.len();
    let mut numeric_cols = vec![Vec::with_capacity(len); block.numeric_dims()];
    let mut nominal_cols = vec![Vec::with_capacity(len); block.nominal_dims()];
    for p in 0..len as PointId {
        for (col, &v) in numeric_cols.iter_mut().zip(block.numeric_row(p)) {
            col.push(v);
        }
        for (col, &v) in nominal_cols.iter_mut().zip(block.nominal_row(p)) {
            col.push(v);
        }
    }
    Ok(Dataset::from_columns(
        schema.clone(),
        numeric_cols,
        nominal_cols,
    )?)
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

/// Reads a snapshot file into one contiguous buffer.
pub fn read_file(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    std::fs::read(path).map_err(|e| SnapshotError::Io(format!("reading {}: {e}", path.display())))
}

/// Atomically replaces `path` with `bytes`: the payload lands in a sibling temp file
/// first and is renamed over the target, so a crash mid-write can never leave a torn
/// snapshot where a loader will find it.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)
        .map_err(|e| SnapshotError::Io(format!("writing {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        SnapshotError::Io(format!("renaming into {}: {e}", path.display()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Dimension;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::nominal_with_labels("group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("meal", ["b", "hb"]),
        ])
        .unwrap()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_round_trips_and_aligns_sections() {
        let mut b = SnapshotBuilder::new();
        b.section(7, vec![1, 2, 3]);
        b.section(9, vec![4; 13]);
        let buf = b.finish();
        let view = SnapshotView::parse(&buf).unwrap();
        assert_eq!(view.section(7).unwrap(), &[1, 2, 3]);
        assert_eq!(view.section(9).unwrap(), &[4; 13]);
        assert_eq!(view.section_ids(), vec![7, 9]);
        assert!(view.has_section(7));
        assert!(!view.has_section(8));
        assert_eq!(view.section(8), Err(SnapshotError::MissingSection(8)));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let mut b = SnapshotBuilder::new();
        b.section(1, b"hello snapshot".to_vec());
        b.section(2, (0u32..64).flat_map(|v| v.to_le_bytes()).collect());
        let buf = b.finish();
        SnapshotView::parse(&buf).unwrap();
        for i in 0..buf.len() {
            for bit in [1u8, 0x80] {
                let mut corrupt = buf.clone();
                corrupt[i] ^= bit;
                assert!(
                    SnapshotView::parse(&corrupt).is_err(),
                    "flip at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut b = SnapshotBuilder::new();
        b.section(1, vec![9; 40]);
        let buf = b.finish();
        for len in 0..buf.len() {
            assert!(
                SnapshotView::parse(&buf[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn version_bump_is_rejected() {
        let mut b = SnapshotBuilder::new();
        b.section(1, vec![1]);
        let mut buf = b.finish();
        buf[8] = FORMAT_VERSION as u8 + 1;
        assert_eq!(
            SnapshotView::parse(&buf).err(),
            Some(SnapshotError::UnsupportedVersion {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION
            })
        );
        let mut bad_magic = b"NOTSNAP\0".to_vec();
        bad_magic.extend_from_slice(&buf[8..]);
        assert_eq!(
            SnapshotView::parse(&bad_magic).err(),
            Some(SnapshotError::BadMagic)
        );
    }

    #[test]
    fn vbyte_and_postings_round_trip() {
        let mut w = ByteWriter::new();
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            w.put_vbyte(v);
        }
        w.put_postings(&[0, 1, 5, 64, 1000, 1001]);
        w.put_postings(&[]);
        let bytes = w.into_inner();
        let mut r = ByteReader::new(&bytes);
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            assert_eq!(r.get_vbyte().unwrap(), v);
        }
        assert_eq!(r.get_postings(2000).unwrap(), vec![0, 1, 5, 64, 1000, 1001]);
        assert_eq!(r.get_postings(2000).unwrap(), Vec::<PointId>::new());
        r.expect_end().unwrap();
    }

    #[test]
    fn postings_reject_non_monotone_and_oversized_lists() {
        let mut w = ByteWriter::new();
        w.put_vbyte(2); // count
        w.put_vbyte(5); // id 4
        w.put_vbyte(0); // zero gap: not strictly increasing
        let bytes = w.into_inner();
        assert!(matches!(
            ByteReader::new(&bytes).get_postings(10),
            Err(SnapshotError::Corrupt(_))
        ));
        let mut w = ByteWriter::new();
        w.put_postings(&[0, 1, 2]);
        let bytes = w.into_inner();
        assert!(matches!(
            ByteReader::new(&bytes).get_postings(2),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn schema_codec_round_trips() {
        let schema = sample_schema();
        let decoded = decode_schema(&encode_schema(&schema)).unwrap();
        assert_eq!(decoded, schema);
        // Numeric-only schemas too.
        let plain = Schema::new(vec![Dimension::numeric("x"), Dimension::numeric("y")]).unwrap();
        assert_eq!(decode_schema(&encode_schema(&plain)).unwrap(), plain);
    }

    #[test]
    fn template_codec_round_trips_both_forms() {
        let schema = sample_schema();
        let implicit = Template::from_preference(
            &schema,
            Preference::from_dims(vec![
                ImplicitPreference::new([0, 2]).unwrap(),
                ImplicitPreference::none(),
            ]),
        )
        .unwrap();
        let decoded = decode_template(&schema, &encode_template(&implicit)).unwrap();
        assert_eq!(decoded, implicit);

        let general = Template::from_partial_orders(
            &schema,
            vec![
                PartialOrder::from_pairs(3, [(0, 1), (0, 2)]).unwrap(),
                PartialOrder::empty(2),
            ],
        )
        .unwrap();
        let decoded = decode_template(&schema, &encode_template(&general)).unwrap();
        assert_eq!(decoded, general);
    }

    #[test]
    fn block_codec_round_trips_with_tombstones_and_epoch() {
        let schema = sample_schema();
        let mut data = Dataset::empty(schema.clone());
        for (price, g, m) in [(10.0, 0, 0), (20.0, 1, 1), (30.0, 2, 0), (40.0, 0, 1)] {
            data.push_row_ids(&[price], &[g, m]).unwrap();
        }
        let mut block = PointBlock::new(&data);
        block.tombstone(1).unwrap();
        block.append_row(&[50.0], &[1, 0]).unwrap();

        let mut b = SnapshotBuilder::new();
        write_block_sections(&block, &mut b);
        let buf = b.finish();
        let view = SnapshotView::parse(&buf).unwrap();
        let decoded = read_block(&view).unwrap();
        assert_eq!(decoded, block);
        assert_eq!(decoded.epoch(), block.epoch());
        assert_eq!(decoded.live_count(), 4);

        // And the dataset reconstructs by transposition.
        let rebuilt = dataset_from_block(&schema, &decoded).unwrap();
        assert_eq!(rebuilt.len(), 5);
        assert_eq!(rebuilt.numeric(4, 0), 50.0);
        assert_eq!(rebuilt.nominal(2, 0), 2);
    }

    #[test]
    fn dataset_from_block_rejects_schema_mismatch() {
        let schema = sample_schema();
        let mut data = Dataset::empty(schema.clone());
        data.push_row_ids(&[1.0], &[0, 0]).unwrap();
        let block = PointBlock::new(&data);
        let narrow = Schema::new(vec![Dimension::numeric("x")]).unwrap();
        assert!(matches!(
            dataset_from_block(&narrow, &block),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn file_round_trip_is_atomic_and_missing_files_error() {
        let dir = std::env::temp_dir().join(format!("skysnap-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.snap");
        let mut b = SnapshotBuilder::new();
        b.section(1, vec![1, 2, 3]);
        let buf = b.finish();
        write_atomic(&path, &buf).unwrap();
        assert_eq!(read_file(&path).unwrap(), buf);
        assert!(matches!(
            read_file(&dir.join("absent.snap")),
            Err(SnapshotError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_error_converts_into_skyline_error() {
        let err: SkylineError = SnapshotError::BadMagic.into();
        assert!(matches!(err, SkylineError::Snapshot(_)));
        assert!(err.to_string().contains("magic"));
    }
}
