//! Dominance testing under combined numeric and nominal preference orders.

use crate::dataset::Dataset;
use crate::error::{Result, SkylineError};
use crate::order::{PartialOrder, Preference, Template};
use crate::value::PointId;

/// Pairwise dominance testing, implemented by both the reference [`DominanceContext`] and the
/// compiled kernel ([`crate::kernel::CompiledRelation`]).
///
/// The skyline algorithms ([`crate::algo::bnl`], [`crate::algo::sfs`]) are generic over this
/// trait, so the same elimination loops run against either implementation: the context is the
/// executable specification, the kernel is the fast path, and the `kernel_equivalence`
/// property suite holds the two together.
pub trait Dominance {
    /// Accumulator for the accepted window of an elimination scan.
    ///
    /// Implementations choose their own representation: the reference context keeps plain
    /// point ids, while the compiled kernel densifies accepted rows into contiguous buffers
    /// ([`crate::kernel::DenseWindow`]) so the window walk is purely sequential memory.
    /// A `Default` window is empty and must be [`reset`](Dominance::reset_window) against
    /// the relation before reuse.
    type Window: Default;

    /// Empties `window` and binds it to this relation's dimensions, keeping its allocations.
    fn reset_window(&self, window: &mut Self::Window);

    /// Appends point `p` to the accepted window.
    fn push_window(&self, window: &mut Self::Window, p: PointId);

    /// Index (in push order) of the first window member dominating `p`, if any.
    ///
    /// The caller guarantees `p` itself was never pushed into `window`. The window is `&mut`
    /// because implementations may keep per-call scratch inside it (the compiled kernel
    /// stages the candidate's nominal keys there); the accepted contents are not modified.
    fn window_first_dominator(&self, window: &mut Self::Window, p: PointId) -> Option<usize>;

    /// True when `p` dominates `q`: `p ⪯ q` on every dimension and `p ≺ q` on at least one.
    fn dominates(&self, p: PointId, q: PointId) -> bool;

    /// Full three-way (plus equality) comparison of two points.
    fn compare(&self, p: PointId, q: PointId) -> DomRelation;

    /// Index into `candidates` of the first point that dominates `p`, if any.
    ///
    /// This is the innermost operation of every elimination scan (one candidate point tested
    /// against the accepted window); implementations can batch it far more cheaply than a
    /// `dominates` call per candidate — the compiled kernel hoists `p`'s rows out of the loop.
    fn first_dominator(&self, p: PointId, candidates: &[PointId]) -> Option<usize> {
        candidates.iter().position(|&q| self.dominates(q, p))
    }

    /// True when point `p` is dominated by at least one point of `candidates`.
    fn dominated_by_any(&self, p: PointId, candidates: &[PointId]) -> bool {
        self.first_dominator(p, candidates).is_some()
    }

    /// Computes the BNL skyline of `points` (sorted ascending by id).
    ///
    /// The default is the classic window loop over [`Dominance::dominates`]; the compiled
    /// kernel overrides it with the bit-parallel packed window, whose eviction step needs
    /// validity masks the generic [`Dominance::Window`] API does not expose. Algorithms call
    /// this through [`crate::algo::bnl::skyline_of`], so every caller gets whichever inner
    /// loop the implementation (and the active [`crate::kernel::KernelMode`]) provides.
    fn bnl_skyline(&self, points: &[PointId]) -> Vec<PointId> {
        generic_bnl_skyline(self, points)
    }
}

/// The classic BNL window loop, shared by the trait default and the compiled kernel's
/// scalar-mode fallback: each candidate is dropped at its first dominator, otherwise evicts
/// every window member it dominates and joins the window.
pub(crate) fn generic_bnl_skyline<D: Dominance + ?Sized>(
    ctx: &D,
    points: &[PointId],
) -> Vec<PointId> {
    let mut window: Vec<PointId> = Vec::new();
    for &p in points {
        let mut dominated = false;
        let mut evict = Vec::new();
        for (i, &w) in window.iter().enumerate() {
            if ctx.dominates(w, p) {
                dominated = true;
                break;
            }
            if ctx.dominates(p, w) {
                evict.push(i);
            }
        }
        if dominated {
            continue;
        }
        // Remove evicted window entries from the back so indexes stay valid.
        for &i in evict.iter().rev() {
            window.swap_remove(i);
        }
        window.push(p);
    }
    window.sort_unstable();
    window
}

/// Outcome of comparing two points under a dominance relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomRelation {
    /// The first point dominates the second.
    Dominates,
    /// The first point is dominated by the second.
    DominatedBy,
    /// The points have identical values in every dimension.
    Equal,
    /// Neither point dominates the other.
    Incomparable,
}

/// A dominance relation `R = (R1, …, Rm)` bound to a dataset.
///
/// Numeric dimensions always use the universal "smaller is better" total order; each nominal
/// dimension `j` uses the strict partial order `orders[j]` (typically the union of the template
/// order and a query's implicit preference, see [`Template::effective_orders`]).
#[derive(Debug, Clone)]
pub struct DominanceContext<'a> {
    data: &'a Dataset,
    orders: Vec<PartialOrder>,
}

impl<'a> DominanceContext<'a> {
    /// Binds per-nominal-dimension orders to a dataset.
    pub fn new(data: &'a Dataset, orders: Vec<PartialOrder>) -> Result<Self> {
        let schema = data.schema();
        if orders.len() != schema.nominal_count() {
            return Err(SkylineError::InvalidArgument(format!(
                "expected {} nominal orders, got {}",
                schema.nominal_count(),
                orders.len()
            )));
        }
        for (j, order) in orders.iter().enumerate() {
            let card = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            if order.cardinality() != card {
                return Err(SkylineError::InvalidArgument(format!(
                    "order on nominal dimension {j} has cardinality {} but the domain has {card}",
                    order.cardinality()
                )));
            }
        }
        Ok(Self { data, orders })
    }

    /// Builds the context for a template alone (`R`), i.e. the relation every query refines.
    pub fn for_template(data: &'a Dataset, template: &Template) -> Result<Self> {
        Self::new(data, template.orders().to_vec())
    }

    /// Builds the context for a query preference evaluated against a template
    /// (`R ∪ P(R̃′)`).
    pub fn for_query(data: &'a Dataset, template: &Template, query: &Preference) -> Result<Self> {
        let orders = template.effective_orders(data.schema(), query)?;
        Self::new(data, orders)
    }

    /// The dataset this context is bound to.
    pub fn dataset(&self) -> &'a Dataset {
        self.data
    }

    /// The per-nominal-dimension orders of the relation.
    pub fn orders(&self) -> &[PartialOrder] {
        &self.orders
    }

    /// True when `p` dominates `q`: `p ⪯ q` on every dimension and `p ≺ q` on at least one.
    pub fn dominates(&self, p: PointId, q: PointId) -> bool {
        if p == q {
            return false;
        }
        let mut strict = false;
        let schema = self.data.schema();
        for j in 0..schema.numeric_count() {
            let pv = self.data.numeric(p, j);
            let qv = self.data.numeric(q, j);
            if pv > qv {
                return false;
            }
            if pv < qv {
                strict = true;
            }
        }
        for (j, order) in self.orders.iter().enumerate() {
            let pv = self.data.nominal(p, j);
            let qv = self.data.nominal(q, j);
            if pv == qv {
                continue;
            }
            if order.strictly_preferred(pv, qv) {
                strict = true;
            } else {
                return false;
            }
        }
        strict
    }

    /// Full three-way (plus equality) comparison of two points.
    pub fn compare(&self, p: PointId, q: PointId) -> DomRelation {
        if p == q {
            return DomRelation::Equal;
        }
        // p_better: p can still dominate q; q_better: q can still dominate p.
        let mut p_strict = false;
        let mut q_strict = false;
        let mut p_ok = true;
        let mut q_ok = true;
        let schema = self.data.schema();
        for j in 0..schema.numeric_count() {
            let pv = self.data.numeric(p, j);
            let qv = self.data.numeric(q, j);
            if pv < qv {
                p_strict = true;
                q_ok = false;
            } else if qv < pv {
                q_strict = true;
                p_ok = false;
            }
            if !p_ok && !q_ok {
                return DomRelation::Incomparable;
            }
        }
        let mut all_equal = !p_strict && !q_strict;
        for (j, order) in self.orders.iter().enumerate() {
            let pv = self.data.nominal(p, j);
            let qv = self.data.nominal(q, j);
            if pv == qv {
                continue;
            }
            all_equal = false;
            if order.strictly_preferred(pv, qv) {
                p_strict = true;
                q_ok = false;
            } else if order.strictly_preferred(qv, pv) {
                q_strict = true;
                p_ok = false;
            } else {
                // Incomparable nominal values block dominance in both directions.
                p_ok = false;
                q_ok = false;
            }
            if !p_ok && !q_ok {
                return DomRelation::Incomparable;
            }
        }
        if all_equal {
            DomRelation::Equal
        } else if p_ok && p_strict {
            DomRelation::Dominates
        } else if q_ok && q_strict {
            DomRelation::DominatedBy
        } else {
            DomRelation::Incomparable
        }
    }

    /// True when point `p` is dominated by at least one point of `candidates`.
    pub fn dominated_by_any(&self, p: PointId, candidates: &[PointId]) -> bool {
        candidates.iter().any(|&q| self.dominates(q, p))
    }
}

impl Dominance for DominanceContext<'_> {
    /// The reference window is just the accepted point ids.
    type Window = Vec<PointId>;

    fn reset_window(&self, window: &mut Vec<PointId>) {
        window.clear();
    }

    fn push_window(&self, window: &mut Vec<PointId>, p: PointId) {
        window.push(p);
    }

    fn window_first_dominator(&self, window: &mut Vec<PointId>, p: PointId) -> Option<usize> {
        window.iter().position(|&q| self.dominates(q, p))
    }

    #[inline]
    fn dominates(&self, p: PointId, q: PointId) -> bool {
        DominanceContext::dominates(self, p, q)
    }

    fn compare(&self, p: PointId, q: PointId) -> DomRelation {
        DominanceContext::compare(self, p, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::order::ImplicitPreference;
    use crate::schema::{Dimension, Schema};

    /// The vacation packages of Table 1 (price, hotel-class stored negated, hotel-group).
    fn vacation_data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group) in [
            (1600.0, 4.0, "T"), // a = 0
            (2400.0, 1.0, "T"), // b = 1
            (3000.0, 5.0, "H"), // c = 2
            (3600.0, 4.0, "H"), // d = 3
            (2400.0, 2.0, "M"), // e = 4
            (3000.0, 3.0, "M"), // f = 5
        ] {
            b.push_row([
                crate::dataset::RowValue::Num(price),
                crate::dataset::RowValue::Num(-class),
                group.into(),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn dominance_without_nominal_preference() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        // a dominates b (same group, cheaper, better class).
        assert!(ctx.dominates(0, 1));
        assert!(!ctx.dominates(1, 0));
        // c dominates d.
        assert!(ctx.dominates(2, 3));
        // a does not dominate c: different incomparable groups.
        assert!(!ctx.dominates(0, 2));
        assert_eq!(ctx.compare(0, 1), DomRelation::Dominates);
        assert_eq!(ctx.compare(1, 0), DomRelation::DominatedBy);
        assert_eq!(ctx.compare(0, 2), DomRelation::Incomparable);
        assert_eq!(ctx.compare(4, 4), DomRelation::Equal);
    }

    #[test]
    fn dominance_with_alice_preference() {
        // Alice: T ≺ M ≺ * — her skyline is {a, c} (Table 2), so e and f must be dominated.
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let query = Preference::from_dims(vec![ImplicitPreference::new([0, 2]).unwrap()]);
        let ctx = DominanceContext::for_query(&data, &template, &query).unwrap();
        assert!(
            ctx.dominates(0, 4),
            "a dominates e under Alice's preference"
        );
        assert!(
            ctx.dominates(0, 5),
            "a dominates f under Alice's preference"
        );
        assert!(
            !ctx.dominates(0, 2),
            "c stays incomparable to a (H unlisted)"
        );
        assert!(ctx.dominates(0, 1));
    }

    #[test]
    fn dominated_by_any_helper() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        assert!(ctx.dominated_by_any(1, &[0, 2]));
        assert!(!ctx.dominated_by_any(0, &[1, 2, 3, 4, 5]));
        assert!(!ctx.dominated_by_any(0, &[]));
    }

    #[test]
    fn equal_rows_are_equal_not_dominating() {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal_with_labels("g", ["a", "b"]),
        ])
        .unwrap();
        let data = Dataset::from_columns(schema, vec![vec![1.0, 1.0]], vec![vec![0, 0]]).unwrap();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        assert!(!ctx.dominates(0, 1));
        assert!(!ctx.dominates(1, 0));
        assert_eq!(ctx.compare(0, 1), DomRelation::Equal);
    }

    #[test]
    fn context_validates_order_arity_and_cardinality() {
        let data = vacation_data();
        assert!(DominanceContext::new(&data, vec![]).is_err());
        assert!(DominanceContext::new(&data, vec![PartialOrder::empty(7)]).is_err());
        assert!(DominanceContext::new(&data, vec![PartialOrder::empty(3)]).is_ok());
    }

    #[test]
    fn strictness_is_required() {
        // Same nominal value, identical numeric values: no dominance either way.
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::numeric("y"),
            Dimension::nominal_with_labels("g", ["a", "b"]),
        ])
        .unwrap();
        let data = Dataset::from_columns(
            schema,
            vec![vec![1.0, 1.0], vec![2.0, 2.0]],
            vec![vec![0, 1]],
        )
        .unwrap();
        // With preference a ≺ *, point 0 dominates point 1 purely via the nominal dimension.
        let template = Template::empty(data.schema());
        let query = Preference::from_dims(vec![ImplicitPreference::first_order(0)]);
        let ctx = DominanceContext::for_query(&data, &template, &query).unwrap();
        assert!(ctx.dominates(0, 1));
        assert_eq!(ctx.compare(1, 0), DomRelation::DominatedBy);
        // Without the preference the nominal values are incomparable, so no dominance.
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        assert!(!ctx.dominates(0, 1));
        assert!(!ctx.dominates(1, 0));
    }
}
