//! Compiled dominance kernel: query-compiled orders over a cache-friendly point layout.
//!
//! [`crate::DominanceContext`] is the *reference* dominance implementation: per-column lookups
//! into the columnar [`Dataset`] plus a [`PartialOrder`] closure probe per nominal dimension.
//! Correct, but every pairwise test pays strided column access (one cache line per dimension
//! per point) and several layers of bounds-checked indirection — and the pairwise test is the
//! innermost loop of every algorithm in this workspace (BNL, SFS, Adaptive SFS, the hybrid
//! engine's fallback), each of which performs an O(n²)-shaped number of them.
//!
//! This module compiles the same relation into a form the hardware likes:
//!
//! * [`PointBlock`] — a **row-major, interleaved layout** of the dataset: all numeric values
//!   of one point are contiguous, and so are its nominal value ids. One pairwise test touches
//!   two short contiguous runs instead of `d` strided columns. A block depends only on the
//!   dataset, so it is built **once** and shared (`Arc`) across every query, engine and
//!   worker thread.
//! * [`CompiledOrder`] — one nominal dimension's strict order flattened into **dense per-value
//!   closure bitmask rows** (`u64` words: bit `v` of row `u` says `u ≺ v`) plus **layered
//!   ranks** (topological depth in the order's DAG), giving a branch-light `u ≺ v` probe with
//!   a one-compare early out. Compiling is O(c²) bit probes over a cardinality-`c` domain —
//!   nominal cardinalities are tiny (4–40 in the paper), so this costs well under a
//!   microsecond per query.
//! * [`CompiledRelation`] — the kernel itself: a shared block plus one compiled order per
//!   nominal dimension. Behaviourally identical to [`DominanceContext`] (asserted by the
//!   `kernel_equivalence` property suite) but with the inner loop reduced to contiguous loads,
//!   integer compares and single-word bit tests.
//!
//! Algorithms accept either implementation through the [`Dominance`] trait, keeping
//! [`DominanceContext`] as the executable specification the kernel is checked against.

use crate::dataset::Dataset;
use crate::dominance::{DomRelation, Dominance, DominanceContext};
use crate::error::{Result, SkylineError};
use crate::lanes::PackedLanes;
use crate::order::{PartialOrder, Preference, Template};
use crate::schema::Schema;
use crate::value::{PointId, ValueId};
use std::cell::Cell;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Which dominance inner loop the compiled kernel runs.
///
/// Both modes are behaviourally identical (the `kernel_equivalence` property suite pins them
/// pair-for-pair against the reference [`DominanceContext`]); the choice is purely a
/// performance/debuggability trade:
///
/// * [`KernelMode::Packed`] (the default) runs the bit-parallel window: accepted rows are
///   packed 64 to a block and one pass of `u64` mask algebra tests the candidate against all
///   of them at once;
/// * [`KernelMode::Scalar`] keeps the PR 3 compiled walk — one row at a time with an early
///   out per dimension — as the fallback for bisection, for sanitizer runs, and for the CI
///   leg that keeps the fallback from rotting.
///
/// The process-wide default comes from the `SKYLINE_KERNEL` environment variable (`scalar`
/// selects the fallback, anything else the packed kernel), read once on first use. Tests and
/// benches that need both modes in one process use [`with_kernel_mode`], which overrides the
/// default for the calling thread only — worker threads spawned by parallel builds consult
/// the process-wide default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Bit-parallel 64-lane window walk (the default).
    Packed,
    /// Row-at-a-time compiled walk (the PR 3 path), kept as the runtime fallback.
    Scalar,
}

fn env_kernel_mode() -> KernelMode {
    static MODE: OnceLock<KernelMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("SKYLINE_KERNEL") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => KernelMode::Scalar,
        _ => KernelMode::Packed,
    })
}

thread_local! {
    static MODE_OVERRIDE: Cell<Option<KernelMode>> = const { Cell::new(None) };
}

/// The kernel mode in effect on the calling thread: the innermost [`with_kernel_mode`]
/// override if one is active, else the process-wide `SKYLINE_KERNEL` default.
pub fn kernel_mode() -> KernelMode {
    MODE_OVERRIDE.get().unwrap_or_else(env_kernel_mode)
}

/// Runs `f` with the calling thread's kernel mode forced to `mode`, restoring the previous
/// override afterwards (also on panic). This is how equivalence tests and benches compare
/// both inner loops inside one process; it does not affect other threads.
pub fn with_kernel_mode<T>(mode: KernelMode, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<KernelMode>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE_OVERRIDE.set(self.0);
        }
    }
    let _restore = Restore(MODE_OVERRIDE.replace(Some(mode)));
    f()
}

/// Version counter of a mutable dataset: every row insertion or logical deletion bumps it.
///
/// Query answers are only meaningful relative to the epoch they were computed at, so serving
/// layers tag derived artifacts (cached skylines, materialized statistics) with the epoch and
/// treat a mismatch as staleness. Epochs are totally ordered; [`DatasetEpoch::INITIAL`] is the
/// epoch of a freshly built, never-mutated block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DatasetEpoch(u64);

impl DatasetEpoch {
    /// The epoch of a freshly built, never-mutated dataset.
    pub const INITIAL: Self = Self(0);

    /// The raw counter value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Reconstructs an epoch from its raw counter — the snapshot load path uses this to
    /// restore a rehydrated block's mutation epoch so epoch-tagged artifacts (cached
    /// skylines, remap chains) keep composing across a process restart.
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }
}

impl fmt::Display for DatasetEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

/// Mapping between the row-id spaces of a [`PointBlock`] and its physically compacted
/// successor.
///
/// Compaction ([`PointBlock::compacted`]) drops tombstoned rows and renumbers the survivors,
/// so every id minted before the compaction is stale afterwards. The remap is the published
/// translation: `new_id(old)` is the surviving row's new id (or `None` when the old row was
/// dead and physically reclaimed), `old_id(new)` goes the other way. Both directions are
/// **order-preserving** — compaction keeps surviving rows in their original relative order and
/// appends replayed rows at the end — so translating a sorted id list yields a sorted list.
///
/// Serving layers hold the remap next to the epochs it bridges so derived artifacts (cached
/// skylines, caller-held row handles) can be translated instead of discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowIdRemap {
    /// `forward[old]` = the row's id in the new space, `None` when it was reclaimed.
    forward: Vec<Option<PointId>>,
    /// `backward[new]` = the row's id in the old space.
    backward: Vec<PointId>,
}

impl RowIdRemap {
    /// Builds the remap for a compaction that keeps exactly the rows where `live` is true,
    /// in order.
    fn from_liveness(live: &[bool]) -> Self {
        let mut forward = Vec::with_capacity(live.len());
        let mut backward = Vec::new();
        for (old, &is_live) in live.iter().enumerate() {
            if is_live {
                forward.push(Some(backward.len() as PointId));
                backward.push(old as PointId);
            } else {
                forward.push(None);
            }
        }
        Self { forward, backward }
    }

    /// The new id of old row `old`, or `None` when the row was physically reclaimed (it was
    /// tombstoned before the compaction) or never existed.
    pub fn new_id(&self, old: PointId) -> Option<PointId> {
        self.forward.get(old as usize).copied().flatten()
    }

    /// The old id of new row `new`, or `None` when `new` is out of range.
    pub fn old_id(&self, new: PointId) -> Option<PointId> {
        self.backward.get(new as usize).copied()
    }

    /// Number of rows in the old id space (including the reclaimed ones).
    pub fn old_len(&self) -> usize {
        self.forward.len()
    }

    /// Number of rows in the new id space.
    pub fn new_len(&self) -> usize {
        self.backward.len()
    }

    /// Number of old rows physically reclaimed by the compaction.
    pub fn reclaimed(&self) -> usize {
        self.old_len() - self.new_len()
    }

    /// True when the compaction dropped nothing (every old id maps to itself).
    pub fn is_identity(&self) -> bool {
        self.old_len() == self.new_len()
    }

    /// The old ids of the surviving rows, in new-id order (`kept_old_ids()[new] == old`) —
    /// exactly the `keep` list [`crate::Dataset::retained`] expects for the dataset half of a
    /// compaction.
    pub fn kept_old_ids(&self) -> &[PointId] {
        &self.backward
    }

    /// Records a row appended (in both spaces) **after** the compaction snapshot was taken:
    /// the next old id maps to `new`. The generation-swap replay path uses this to keep the
    /// published remap covering rows inserted while the new generation was being built.
    /// Replayed rows land at the tail of the new space, so `new` must equal
    /// [`RowIdRemap::new_len`].
    pub fn push_appended(&mut self, new: PointId) {
        debug_assert_eq!(new as usize, self.backward.len());
        let old = self.forward.len() as PointId;
        self.forward.push(Some(new));
        self.backward.push(old);
    }

    /// Translates a list of old ids, preserving order; `None` when any id has no mapping
    /// (i.e. some listed row was reclaimed — the caller's artifact is unsalvageable).
    pub fn translate_ids(&self, old: &[PointId]) -> Option<Vec<PointId>> {
        old.iter().map(|&p| self.new_id(p)).collect()
    }
}

/// Row-major, interleaved copy of a dataset's values, shared by every compiled relation.
///
/// Point `p` occupies `numeric_dims` contiguous `f64`s in [`PointBlock::numeric_row`] and
/// `nominal_dims` contiguous [`ValueId`]s in [`PointBlock::nominal_row`], so a pairwise
/// dominance test reads two short cache-resident runs instead of one strided cell per column.
/// The block is query-independent: build it once per dataset (an O(n·d) transpose) and hand
/// the same `Arc` to every [`CompiledRelation`].
///
/// Blocks support **dynamic datasets** without a rebuild: [`PointBlock::append_row`] adds a
/// point at the end and [`PointBlock::tombstone`] logically deletes one. Both bump the block's
/// [`DatasetEpoch`]. Tombstoned rows keep their id (so existing query answers stay
/// addressable) but are excluded from [`PointBlock::live_ids`], which is what the elimination
/// scans enumerate — dead rows simply never enter a window or candidate list.
#[derive(Debug, Clone, PartialEq)]
pub struct PointBlock {
    len: usize,
    numeric_dims: usize,
    nominal_dims: usize,
    nums: Vec<f64>,
    noms: Vec<ValueId>,
    /// Per nominal dimension: the largest value id present (0 for empty datasets); used to
    /// validate compiled orders against the block without retaining the schema.
    max_value: Vec<ValueId>,
    /// `live[p]` is false when row `p` has been tombstoned.
    live: Vec<bool>,
    live_len: usize,
    epoch: u64,
}

impl PointBlock {
    /// Transposes `data` into the interleaved row-major layout.
    pub fn new(data: &Dataset) -> Self {
        let schema = data.schema();
        let len = data.len();
        let numeric_dims = schema.numeric_count();
        let nominal_dims = schema.nominal_count();
        let mut nums = Vec::with_capacity(len * numeric_dims);
        let mut noms = Vec::with_capacity(len * nominal_dims);
        for p in 0..len as PointId {
            for j in 0..numeric_dims {
                nums.push(data.numeric(p, j));
            }
            for j in 0..nominal_dims {
                noms.push(data.nominal(p, j));
            }
        }
        let max_value = (0..nominal_dims)
            .map(|j| {
                data.nominal_column(j)
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or_default()
            })
            .collect();
        Self {
            len,
            numeric_dims,
            nominal_dims,
            nums,
            noms,
            max_value,
            live: vec![true; len],
            live_len: len,
            epoch: 0,
        }
    }

    /// Number of points in the block, **including** tombstoned rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the block holds no points at all (live or dead).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The block's current mutation epoch (bumped by every append or tombstone).
    pub fn epoch(&self) -> DatasetEpoch {
        DatasetEpoch(self.epoch)
    }

    /// Number of live (non-tombstoned) rows.
    pub fn live_count(&self) -> usize {
        self.live_len
    }

    /// Number of tombstoned rows still physically occupying the block.
    pub fn dead_count(&self) -> usize {
        self.len - self.live_len
    }

    /// Fraction of the block's rows that are tombstoned (0 for an empty block) — the quantity
    /// maintenance policies watch to decide when physical compaction pays off.
    pub fn dead_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.dead_count() as f64 / self.len as f64
        }
    }

    /// Physically compacts the block: tombstoned rows are dropped, survivors renumbered in
    /// order. Returns the new block — every row live, `len() == live_count()` — and the
    /// [`RowIdRemap`] translating old ids to new ones.
    ///
    /// The compacted block's epoch is the source epoch **plus one**: renumbering invalidates
    /// every id minted against the old block, so derived artifacts tagged with the old epoch
    /// must observe a mismatch. Per-dimension `max_value` bounds are recomputed over the
    /// surviving rows, so order-cardinality validation stays as tight as a fresh build.
    pub fn compacted(&self) -> (Self, RowIdRemap) {
        let remap = RowIdRemap::from_liveness(&self.live);
        let live_len = remap.new_len();
        let mut nums = Vec::with_capacity(live_len * self.numeric_dims);
        let mut noms = Vec::with_capacity(live_len * self.nominal_dims);
        let mut max_value = vec![ValueId::default(); self.nominal_dims];
        for new in 0..live_len as PointId {
            let old = remap.old_id(new).expect("new id in range by construction");
            nums.extend_from_slice(self.numeric_row(old));
            let row = self.nominal_row(old);
            noms.extend_from_slice(row);
            for (m, &v) in max_value.iter_mut().zip(row) {
                *m = (*m).max(v);
            }
        }
        let block = Self {
            len: live_len,
            numeric_dims: self.numeric_dims,
            nominal_dims: self.nominal_dims,
            nums,
            noms,
            max_value,
            live: vec![true; live_len],
            live_len,
            epoch: self.epoch + 1,
        };
        (block, remap)
    }

    /// True when row `p` exists and has not been tombstoned.
    #[inline]
    pub fn is_live(&self, p: PointId) -> bool {
        self.live.get(p as usize).copied().unwrap_or(false)
    }

    /// The ids of all live rows, in ascending order — what elimination scans over a mutable
    /// dataset enumerate so compiled scans skip dead rows without a rebuild.
    pub fn live_ids(&self) -> impl Iterator<Item = PointId> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(p, _)| p as PointId)
    }

    /// Appends one row (numeric values in numeric-index order, nominal value ids in
    /// nominal-index order) and bumps the epoch. Returns the new row id.
    ///
    /// The caller is responsible for keeping the block in sync with its [`Dataset`]
    /// (values are validated against the schema when they are pushed into the dataset).
    pub fn append_row(&mut self, numeric: &[f64], nominal: &[ValueId]) -> Result<PointId> {
        if numeric.len() != self.numeric_dims || nominal.len() != self.nominal_dims {
            return Err(SkylineError::RowShapeMismatch {
                expected: self.numeric_dims + self.nominal_dims,
                got: numeric.len() + nominal.len(),
            });
        }
        self.nums.extend_from_slice(numeric);
        self.noms.extend_from_slice(nominal);
        for (m, &v) in self.max_value.iter_mut().zip(nominal) {
            *m = (*m).max(v);
        }
        let id = self.len as PointId;
        self.len += 1;
        self.live.push(true);
        self.live_len += 1;
        self.epoch += 1;
        Ok(id)
    }

    /// Logically deletes row `p`, bumping the epoch. Returns `true` when the row was live
    /// (tombstoning an already-dead row is a no-op that leaves the epoch untouched); rows that
    /// never existed are an error.
    pub fn tombstone(&mut self, p: PointId) -> Result<bool> {
        let Some(slot) = self.live.get_mut(p as usize) else {
            return Err(SkylineError::InvalidArgument(format!(
                "row {p} does not exist"
            )));
        };
        if !*slot {
            return Ok(false);
        }
        *slot = false;
        self.live_len -= 1;
        self.epoch += 1;
        Ok(true)
    }

    /// Number of numeric dimensions per point.
    pub fn numeric_dims(&self) -> usize {
        self.numeric_dims
    }

    /// Number of nominal dimensions per point.
    pub fn nominal_dims(&self) -> usize {
        self.nominal_dims
    }

    /// The contiguous numeric values of point `p`.
    #[inline]
    pub fn numeric_row(&self, p: PointId) -> &[f64] {
        let start = p as usize * self.numeric_dims;
        &self.nums[start..start + self.numeric_dims]
    }

    /// The contiguous nominal value ids of point `p`.
    #[inline]
    pub fn nominal_row(&self, p: PointId) -> &[ValueId] {
        let start = p as usize * self.nominal_dims;
        &self.noms[start..start + self.nominal_dims]
    }

    /// Approximate heap footprint in bytes (for the storage plots).
    pub fn approximate_bytes(&self) -> usize {
        self.nums.len() * std::mem::size_of::<f64>()
            + self.noms.len() * std::mem::size_of::<ValueId>()
            + self.live.len()
    }

    /// The full interleaved numeric array (`len × numeric_dims` values, row-major) — the
    /// snapshot writer persists this verbatim so the load side can bulk-decode it.
    pub fn numeric_values(&self) -> &[f64] {
        &self.nums
    }

    /// The full interleaved nominal array (`len × nominal_dims` ids, row-major).
    pub fn nominal_values(&self) -> &[ValueId] {
        &self.noms
    }

    /// Per-nominal-dimension largest value id present (see the field invariant: the max is
    /// over all physical rows, live and tombstoned).
    pub fn max_values(&self) -> &[ValueId] {
        &self.max_value
    }

    /// The per-row liveness flags (`liveness()[p]` is false for tombstoned rows).
    pub fn liveness(&self) -> &[bool] {
        &self.live
    }

    /// Reassembles a block from persisted parts (the snapshot load path). The caller —
    /// [`crate::snapshot::read_block`] — has already validated array lengths, liveness
    /// consistency and the max-value invariant against the decoded header.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        len: usize,
        numeric_dims: usize,
        nominal_dims: usize,
        nums: Vec<f64>,
        noms: Vec<ValueId>,
        max_value: Vec<ValueId>,
        live: Vec<bool>,
        epoch: u64,
    ) -> Self {
        debug_assert_eq!(nums.len(), len * numeric_dims);
        debug_assert_eq!(noms.len(), len * nominal_dims);
        debug_assert_eq!(max_value.len(), nominal_dims);
        debug_assert_eq!(live.len(), len);
        let live_len = live.iter().filter(|&&l| l).count();
        Self {
            len,
            numeric_dims,
            nominal_dims,
            nums,
            noms,
            max_value,
            live,
            live_len,
            epoch,
        }
    }
}

/// One nominal dimension's strict order, compiled to dense closure bitmasks and layered ranks.
///
/// Row `u` of the bitmask (`words_per_row` `u64`s) has bit `v` set exactly when `u ≺ v` in the
/// transitive closure, so the strict-preference probe is one shift-and-mask on a flat array.
/// The **layer** of a value is its depth in the order's DAG (longest strict chain of better
/// values above it); `u ≺ v` implies `layer(u) < layer(v)`, and for **ranked** orders (weak
/// orders, which every implicit preference induces — see [`CompiledOrder::is_ranked`]) the
/// implication is an equivalence, so the kernel's window walk replaces the bit probe by two
/// integer compares on data streaming through the scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledOrder {
    cardinality: usize,
    words_per_row: usize,
    strict: Vec<u64>,
    layers: Vec<u16>,
    ranked: bool,
}

impl CompiledOrder {
    /// Flattens `order`'s closure into bitmask rows and computes the layered ranks.
    pub fn compile(order: &PartialOrder) -> Self {
        let cardinality = order.cardinality();
        let words_per_row = cardinality.div_ceil(64).max(1);
        let mut strict = vec![0u64; cardinality * words_per_row];
        for u in 0..cardinality {
            for v in 0..cardinality {
                if order.strictly_preferred(u as ValueId, v as ValueId) {
                    strict[u * words_per_row + (v >> 6)] |= 1 << (v & 63);
                }
            }
        }
        // Layer = longest chain of strictly-better values above a value. Orders are acyclic
        // (PartialOrder construction rejects cycles), so relaxing `cardinality` times reaches
        // the fixpoint.
        let mut layers = vec![0u16; cardinality];
        for _ in 0..cardinality {
            let mut changed = false;
            for u in 0..cardinality {
                for v in 0..cardinality {
                    if strict[u * words_per_row + (v >> 6)] >> (v & 63) & 1 != 0
                        && layers[v] <= layers[u]
                    {
                        layers[v] = layers[u] + 1;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Rankedness: the layers are a *faithful* linearization (`u ≺ v ⟺ layer(u) <
        // layer(v)`) exactly when the order is a weak order — which every implicit-preference
        // order is, so the hot window walk can replace the closure probe by two integer
        // compares. General partial orders that fail the check keep the bitmask path.
        let ranked = (0..cardinality).all(|u| {
            (0..cardinality).all(|v| {
                u == v
                    || ((strict[u * words_per_row + (v >> 6)] >> (v & 63) & 1 != 0)
                        == (layers[u] < layers[v]))
            })
        });
        Self {
            cardinality,
            words_per_row,
            strict,
            layers,
            ranked,
        }
    }

    /// True when the layers are a faithful linearization of the order (`u ≺ v ⟺ layer(u) <
    /// layer(v)`), i.e. the order is a weak order. Every implicit-preference order is ranked;
    /// the compiled window walk then tests dominance with integer compares instead of bitmask
    /// probes.
    pub fn is_ranked(&self) -> bool {
        self.ranked
    }

    /// Number of values in the dimension's domain.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// True when `u ≺ v` in the compiled closure.
    #[inline]
    pub fn strictly_preferred(&self, u: ValueId, v: ValueId) -> bool {
        let (u, v) = (u as usize, v as usize);
        self.strict[u * self.words_per_row + (v >> 6)] >> (v & 63) & 1 != 0
    }

    /// Layered rank of `v`: its depth in the order's DAG. `u ≺ v` implies
    /// `layer(u) < layer(v)`, so equal layers mean "not strictly related".
    #[inline]
    pub fn layer(&self, v: ValueId) -> u16 {
        self.layers[v as usize]
    }

    /// Approximate heap footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.strict.len() * std::mem::size_of::<u64>()
            + self.layers.len() * std::mem::size_of::<u16>()
    }
}

/// Densified accepted window for elimination scans over a [`CompiledRelation`].
///
/// Every accepted point's rows are *copied* into contiguous buffers, so testing the next
/// candidate against the whole window is one sequential walk — no id indirection, no strided
/// loads. Nominal cells are stored as `(value id, layered rank)` pairs: for ranked (weak)
/// orders the dominance test is then two integer compares on data already streaming through
/// the loop, with no closure-probe loads at all. Windows are reusable scratch:
/// [`Dominance::reset_window`] keeps the allocations, so a worker thread serving thousands of
/// queries re-runs its scans allocation-free.
#[derive(Debug, Clone, Default)]
pub struct DenseWindow {
    numeric_dims: usize,
    nominal_dims: usize,
    nums: Vec<f64>,
    /// `(id, rank)` interleaved: stride `2 * nominal_dims` per point.
    noms: Vec<u16>,
    /// Per-call scratch holding the candidate point's `(id, rank)` pairs.
    probe: Vec<u16>,
    len: usize,
    /// The bit-parallel form of the window, populated instead of `nums`/`noms` when the
    /// window was reset under [`KernelMode::Packed`].
    lanes: PackedLanes,
    /// Member point ids, lane-aligned with `lanes`; only maintained in packed mode, where
    /// the scalar-peek prefix test needs to reach back to the block rows.
    members: Vec<PointId>,
    /// Which representation this window was bound to at the last reset.
    packed: bool,
    /// Adaptive scalar-peek depth; persists across resets so reused scratch windows carry
    /// their recent kill-depth signal from scan to scan.
    peek: PeekDepth,
}

/// Seed depth for the scalar peek: how many leading window members the packed probes test
/// with the scalar pairwise kernel before falling into 64-lane mask algebra. Score-sorted
/// scans kill most candidates with the first handful of accepted rows (on the all-nominal
/// Nursery workload, usually the very first); the scalar test early-exits on the first worse
/// dimension, while a packed pass always pays full mask passes over every dimension of a
/// 64-lane block. The peek keeps quickly-dominated candidates at scalar cost and leaves deep
/// survivors — where the window is long and lane parallelism wins — to the packed walk.
///
/// The effective depth is **adaptive** per window ([`PeekDepth`]): each scan tracks an EWMA
/// of its recent kill depths and sizes the peek to roughly twice that, within
/// [`WINDOW_PEEK_MIN`]..=[`WINDOW_PEEK_MAX`]. The `SKYLINE_WINDOW_PEEK` environment variable
/// (or [`with_window_peek`] in tests) pins the depth instead.
const WINDOW_PEEK: usize = 8;

/// Lower bound of the adaptive peek depth — never give up the first couple of scalar tests.
const WINDOW_PEEK_MIN: usize = 2;

/// Upper bound of the adaptive peek depth — beyond this the 64-lane walk wins regardless.
const WINDOW_PEEK_MAX: usize = 32;

fn env_window_peek() -> Option<usize> {
    static PEEK: OnceLock<Option<usize>> = OnceLock::new();
    *PEEK.get_or_init(|| {
        std::env::var("SKYLINE_WINDOW_PEEK")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|d| d.min(64))
    })
}

thread_local! {
    static PEEK_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The pinned peek depth in effect on the calling thread, if any: the innermost
/// [`with_window_peek`] override, else the process-wide `SKYLINE_WINDOW_PEEK` setting.
/// `None` means the depth adapts per scan.
pub fn window_peek_override() -> Option<usize> {
    PEEK_OVERRIDE.get().or_else(env_window_peek)
}

/// Runs `f` with the calling thread's scalar-peek depth pinned to `depth` (0 disables the
/// peek entirely), restoring the previous override afterwards — the [`with_kernel_mode`]
/// idiom for the peek knob. Equivalence tests sweep this to pin packed ≡ scalar at every
/// depth; it does not affect other threads.
pub fn with_window_peek<T>(depth: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            PEEK_OVERRIDE.set(self.0);
        }
    }
    let _restore = Restore(PEEK_OVERRIDE.replace(Some(depth.min(64))));
    f()
}

/// Adaptive scalar-peek depth: a per-window EWMA of recent kill depths (the 1-based index of
/// the first dominator found) sized so that the typical kill stays on the cheap scalar path
/// while deep survivors fall through to the packed walk quickly. The state persists across
/// [`Dominance::reset_window`] — reused scratch windows carry their recent-workload signal
/// from scan to scan — and a pinned depth (env var or [`with_window_peek`]) disables
/// adaptation for reproducibility.
///
/// Correctness does not depend on the depth: the peek tests a prefix of the window with the
/// scalar kernel and the packed pass re-covers every lane, so any depth (including 0) yields
/// the same accept/reject decision for every candidate.
#[derive(Debug, Clone)]
struct PeekDepth {
    depth: usize,
    /// EWMA of observed kill depths, scaled by 8 for integer arithmetic.
    ewma8: u32,
    pinned: bool,
}

impl Default for PeekDepth {
    fn default() -> Self {
        let mut peek = Self {
            depth: WINDOW_PEEK,
            ewma8: (WINDOW_PEEK as u32) * 8,
            pinned: false,
        };
        peek.resync();
        peek
    }
}

impl PeekDepth {
    /// Re-reads the pin (env/test override); called on every window reset so a window
    /// created outside a [`with_window_peek`] scope still honours it.
    fn resync(&mut self) {
        match window_peek_override() {
            Some(d) => {
                self.depth = d;
                self.ewma8 = (d as u32) * 8;
                self.pinned = true;
            }
            None => self.pinned = false,
        }
    }

    /// Records one observed kill depth (1-based) and re-targets the peek to roughly twice
    /// the recent typical depth: `ewma ← (3·ewma + d) / 4`, `depth ← clamp(2·ewma)`.
    #[inline]
    fn observe(&mut self, kill_depth: usize) {
        if self.pinned {
            return;
        }
        let d8 = (kill_depth.min(WINDOW_PEEK_MAX) as u32) * 8;
        self.ewma8 = (3 * self.ewma8 + d8) / 4;
        self.depth = ((self.ewma8 as usize) / 4).clamp(WINDOW_PEEK_MIN, WINDOW_PEEK_MAX);
    }
}

impl DenseWindow {
    /// Number of points in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no point has been pushed since the last reset.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The compiled dominance kernel: a shared [`PointBlock`] plus one [`CompiledOrder`] per
/// nominal dimension.
///
/// Semantically identical to a [`DominanceContext`] over the same dataset and orders (the
/// `kernel_equivalence` property suite asserts `dominates` and `compare` agree point-for-point)
/// but an order of magnitude cheaper per pairwise test: contiguous row loads, no per-cell
/// column indirection, and single-word bit probes for the nominal orders.
///
/// The block is shared via `Arc`, so compiling a relation for a new query preference costs
/// only the per-dimension O(c²) order flattening — the point layout is reused across every
/// query, engine and thread.
#[derive(Debug, Clone)]
pub struct CompiledRelation {
    block: Arc<PointBlock>,
    orders: Vec<CompiledOrder>,
    /// True when every order is ranked (a weak order) — the window walk then skips the order
    /// objects entirely and compares layered ranks.
    all_ranked: bool,
}

impl CompiledRelation {
    /// Compiles per-nominal-dimension orders against a shared block.
    ///
    /// Fails when the number of orders does not match the block's nominal dimensions or an
    /// order's cardinality cannot cover a value id present in the block.
    pub fn new(block: Arc<PointBlock>, orders: &[PartialOrder]) -> Result<Self> {
        Self::validate_cardinalities(&block, orders.len(), |j| orders[j].cardinality())?;
        let orders: Vec<CompiledOrder> = orders.iter().map(CompiledOrder::compile).collect();
        let all_ranked = orders.iter().all(CompiledOrder::is_ranked);
        Ok(Self {
            block,
            orders,
            all_ranked,
        })
    }

    /// Builds a relation from **already compiled** orders, skipping the O(c²) closure
    /// flattening.
    ///
    /// Incremental-maintenance paths evaluate the *same* template relation on every row
    /// insertion or deletion; they compile the template orders once at construction and clone
    /// the (tiny) compiled form per mutation instead of re-deriving the closure each time.
    pub fn from_compiled_orders(
        block: Arc<PointBlock>,
        orders: Vec<CompiledOrder>,
    ) -> Result<Self> {
        Self::validate_cardinalities(&block, orders.len(), |j| orders[j].cardinality())?;
        let all_ranked = orders.iter().all(CompiledOrder::is_ranked);
        Ok(Self {
            block,
            orders,
            all_ranked,
        })
    }

    /// Shared validation: one order per nominal dimension, each covering every value id the
    /// block holds on that dimension.
    fn validate_cardinalities(
        block: &PointBlock,
        count: usize,
        cardinality_of: impl Fn(usize) -> usize,
    ) -> Result<()> {
        if count != block.nominal_dims() {
            return Err(SkylineError::InvalidArgument(format!(
                "expected {} nominal orders, got {count}",
                block.nominal_dims(),
            )));
        }
        for j in 0..count {
            let needed = if block.is_empty() {
                0
            } else {
                block.max_value[j] as usize + 1
            };
            if cardinality_of(j) < needed {
                return Err(SkylineError::InvalidArgument(format!(
                    "order on nominal dimension {j} has cardinality {} but the data holds \
                     value id {}",
                    cardinality_of(j),
                    block.max_value[j]
                )));
            }
        }
        Ok(())
    }

    /// Compiles the relation of a template alone (`R`).
    pub fn for_template(block: Arc<PointBlock>, template: &Template) -> Result<Self> {
        Self::new(block, template.orders())
    }

    /// Compiles the relation of a query preference evaluated against a template
    /// (`R ∪ P(R̃′)`), mirroring [`DominanceContext::for_query`].
    pub fn for_query(
        block: Arc<PointBlock>,
        schema: &Schema,
        template: &Template,
        query: &Preference,
    ) -> Result<Self> {
        let orders = template.effective_orders(schema, query)?;
        Self::new(block, &orders)
    }

    /// One-shot convenience: builds the block *and* compiles the query relation.
    ///
    /// Prefer [`CompiledRelation::for_query`] with a cached block on any hot path — this
    /// variant re-transposes the dataset every call.
    pub fn compile_query(data: &Dataset, template: &Template, query: &Preference) -> Result<Self> {
        Self::for_query(
            Arc::new(PointBlock::new(data)),
            data.schema(),
            template,
            query,
        )
    }

    /// The shared point layout the relation evaluates over.
    pub fn block(&self) -> &Arc<PointBlock> {
        &self.block
    }

    /// The compiled per-nominal-dimension orders.
    pub fn orders(&self) -> &[CompiledOrder] {
        &self.orders
    }

    /// True when `p` dominates `q`: `p ⪯ q` on every dimension and `p ≺ q` on at least one.
    ///
    /// Same contract as [`DominanceContext::dominates`], compiled form.
    #[inline]
    pub fn dominates(&self, p: PointId, q: PointId) -> bool {
        if p == q {
            return false;
        }
        let mut strict = false;
        for (pv, qv) in self
            .block
            .numeric_row(p)
            .iter()
            .zip(self.block.numeric_row(q))
        {
            if pv > qv {
                return false;
            }
            strict |= pv < qv;
        }
        for (order, (&pv, &qv)) in self.orders.iter().zip(
            self.block
                .nominal_row(p)
                .iter()
                .zip(self.block.nominal_row(q)),
        ) {
            if pv != qv {
                if !order.strictly_preferred(pv, qv) {
                    return false;
                }
                strict = true;
            }
        }
        strict
    }

    /// Index into `candidates` of the first point dominating `p`, with `p`'s rows hoisted out
    /// of the candidate loop and the same branchless per-candidate evaluation as the dense
    /// window walk.
    // `!(qv > pv)` is deliberate, not `qv <= pv`: NaN must neither block nor establish
    // dominance, exactly mirroring the reference `if pv > qv { return false }`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn first_dominator(&self, p: PointId, candidates: &[PointId]) -> Option<usize> {
        let pn = self.block.numeric_row(p);
        let pm = self.block.nominal_row(p);
        for (i, &q) in candidates.iter().enumerate() {
            if q == p {
                continue;
            }
            let mut not_worse = true;
            let mut strict = false;
            for (qv, pv) in self.block.numeric_row(q).iter().zip(pn) {
                not_worse &= !(qv > pv);
                strict |= qv < pv;
            }
            for (order, (&qv, &pv)) in self
                .orders
                .iter()
                .zip(self.block.nominal_row(q).iter().zip(pm))
            {
                let differs = qv != pv;
                let preferred = order.strictly_preferred(qv, pv);
                not_worse &= !differs | preferred;
                strict |= differs & preferred;
            }
            if not_worse && strict {
                return Some(i);
            }
        }
        None
    }

    /// Full three-way (plus equality) comparison, mirroring [`DominanceContext::compare`].
    pub fn compare(&self, p: PointId, q: PointId) -> DomRelation {
        if p == q {
            return DomRelation::Equal;
        }
        let mut p_strict = false;
        let mut q_strict = false;
        let mut p_ok = true;
        let mut q_ok = true;
        for (pv, qv) in self
            .block
            .numeric_row(p)
            .iter()
            .zip(self.block.numeric_row(q))
        {
            if pv < qv {
                p_strict = true;
                q_ok = false;
            } else if qv < pv {
                q_strict = true;
                p_ok = false;
            }
            if !p_ok && !q_ok {
                return DomRelation::Incomparable;
            }
        }
        let mut all_equal = !p_strict && !q_strict;
        for (order, (&pv, &qv)) in self.orders.iter().zip(
            self.block
                .nominal_row(p)
                .iter()
                .zip(self.block.nominal_row(q)),
        ) {
            if pv == qv {
                continue;
            }
            all_equal = false;
            if order.strictly_preferred(pv, qv) {
                p_strict = true;
                q_ok = false;
            } else if order.strictly_preferred(qv, pv) {
                q_strict = true;
                p_ok = false;
            } else {
                p_ok = false;
                q_ok = false;
            }
            if !p_ok && !q_ok {
                return DomRelation::Incomparable;
            }
        }
        if all_equal {
            DomRelation::Equal
        } else if p_ok && p_strict {
            DomRelation::Dominates
        } else if q_ok && q_strict {
            DomRelation::DominatedBy
        } else {
            DomRelation::Incomparable
        }
    }

    /// True when point `p` is dominated by at least one point of `candidates`.
    pub fn dominated_by_any(&self, p: PointId, candidates: &[PointId]) -> bool {
        candidates.iter().any(|&q| self.dominates(q, p))
    }

    /// Compiles the same relation a [`DominanceContext`] evaluates, sharing `block`.
    pub fn from_context(block: Arc<PointBlock>, ctx: &DominanceContext<'_>) -> Result<Self> {
        Self::new(block, ctx.orders())
    }

    /// Approximate heap footprint of the compiled orders in bytes (the block is shared and
    /// accounted once via [`PointBlock::approximate_bytes`]).
    pub fn approximate_bytes(&self) -> usize {
        self.orders
            .iter()
            .map(CompiledOrder::approximate_bytes)
            .sum()
    }
}

impl CompiledRelation {
    /// Appends point `p`'s `(id, rank)` nominal pairs to `out`.
    fn extend_nominal_keys(&self, out: &mut Vec<u16>, p: PointId) {
        for (order, &v) in self.orders.iter().zip(self.block.nominal_row(p)) {
            out.push(v);
            out.push(order.layer(v));
        }
    }

    /// The dense-window walk, monomorphized on the numeric arity (`ND == 0` is the
    /// any-arity fallback) and on whether every nominal order is ranked. Early-out on the
    /// first worse dimension; ranked (weak) nominal orders test with two integer compares on
    /// streaming data, general orders probe the closure bitmask.
    fn walk_window<const ND: usize, const ALL_RANKED: bool>(
        &self,
        window: &DenseWindow,
        pn: &[f64],
        md2: usize,
    ) -> Option<usize> {
        let nd = if ND == 0 { window.numeric_dims } else { ND };
        debug_assert_eq!(nd, pn.len());
        let probe = &window.probe;
        'candidates: for i in 0..window.len {
            let mut strict = false;
            if ND == 0 {
                for (qv, pv) in window.nums[i * nd..(i + 1) * nd].iter().zip(pn) {
                    if qv > pv {
                        continue 'candidates;
                    }
                    strict |= qv < pv;
                }
            } else {
                let qn = &window.nums[i * ND..i * ND + ND];
                for j in 0..ND {
                    if qn[j] > pn[j] {
                        continue 'candidates;
                    }
                    strict |= qn[j] < pn[j];
                }
            }
            let qm = &window.noms[i * md2..(i + 1) * md2];
            if ALL_RANKED {
                // Branchless: `q ⪯ p ⟺ q = p ∨ rank(q) < rank(p)`, folded into booleans.
                let mut not_worse = true;
                for (qc, pc) in qm.chunks_exact(2).zip(probe.chunks_exact(2)) {
                    not_worse &= (qc[0] == pc[0]) | (qc[1] < pc[1]);
                    strict |= qc[1] < pc[1];
                }
                if !not_worse {
                    continue 'candidates;
                }
            } else {
                for ((order, qc), pc) in self
                    .orders
                    .iter()
                    .zip(qm.chunks_exact(2))
                    .zip(probe.chunks_exact(2))
                {
                    if qc[0] != pc[0] {
                        let preferred = if order.ranked {
                            qc[1] < pc[1]
                        } else {
                            order.strictly_preferred(qc[0], pc[0])
                        };
                        if !preferred {
                            continue 'candidates;
                        }
                        strict = true;
                    }
                }
            }
            if strict {
                return Some(i);
            }
        }
        None
    }
}

impl Dominance for CompiledRelation {
    type Window = DenseWindow;

    fn reset_window(&self, window: &mut DenseWindow) {
        window.numeric_dims = self.block.numeric_dims();
        window.nominal_dims = self.block.nominal_dims();
        window.nums.clear();
        window.noms.clear();
        window.members.clear();
        window.len = 0;
        window.packed = kernel_mode() == KernelMode::Packed;
        window.peek.resync();
        if window.packed {
            window
                .lanes
                .reset(self.block.numeric_dims(), self.block.nominal_dims());
        }
    }

    fn push_window(&self, window: &mut DenseWindow, p: PointId) {
        debug_assert_eq!(window.numeric_dims, self.block.numeric_dims());
        if window.packed {
            window.probe.clear();
            self.extend_nominal_keys(&mut window.probe, p);
            window.lanes.push(self.block.numeric_row(p), &window.probe);
            window.members.push(p);
        } else {
            window.nums.extend_from_slice(self.block.numeric_row(p));
            self.extend_nominal_keys(&mut window.noms, p);
        }
        window.len += 1;
    }

    fn window_first_dominator(&self, window: &mut DenseWindow, p: PointId) -> Option<usize> {
        let pn = self.block.numeric_row(p);
        let nd = window.numeric_dims;
        let md2 = window.nominal_dims * 2;
        // Hoist the candidate's (id, rank) pairs once per call.
        window.probe.clear();
        self.extend_nominal_keys(&mut window.probe, p);
        if window.packed {
            // Scalar peek first (see [`WINDOW_PEEK`]): the leading accepted rows dominate
            // most candidates, and the pairwise test exits on the first worse dimension.
            // The depth adapts to the scan's recent kill depths.
            for (i, &m) in window.members.iter().take(window.peek.depth).enumerate() {
                if CompiledRelation::dominates(self, m, p) {
                    window.peek.observe(i + 1);
                    return Some(i);
                }
            }
            let hit =
                window
                    .lanes
                    .first_dominator(&self.orders, pn, &window.probe, window.lanes.len());
            if let Some(i) = hit {
                window.peek.observe(i + 1);
            }
            return hit;
        }
        // Monomorphize the walk on the (small) numeric arity so the inner numeric loop fully
        // unrolls with no counters or per-row bounds checks, and on the all-ranked flag so
        // the common weak-order case runs with pure integer compares.
        if self.all_ranked {
            match nd {
                2 => self.walk_window::<2, true>(window, pn, md2),
                3 => self.walk_window::<3, true>(window, pn, md2),
                4 => self.walk_window::<4, true>(window, pn, md2),
                5 => self.walk_window::<5, true>(window, pn, md2),
                _ => self.walk_window::<0, true>(window, pn, md2),
            }
        } else {
            match nd {
                2 => self.walk_window::<2, false>(window, pn, md2),
                3 => self.walk_window::<3, false>(window, pn, md2),
                4 => self.walk_window::<4, false>(window, pn, md2),
                5 => self.walk_window::<5, false>(window, pn, md2),
                _ => self.walk_window::<0, false>(window, pn, md2),
            }
        }
    }

    #[inline]
    fn dominates(&self, p: PointId, q: PointId) -> bool {
        CompiledRelation::dominates(self, p, q)
    }

    fn compare(&self, p: PointId, q: PointId) -> DomRelation {
        CompiledRelation::compare(self, p, q)
    }

    #[inline]
    fn first_dominator(&self, p: PointId, candidates: &[PointId]) -> Option<usize> {
        CompiledRelation::first_dominator(self, p, candidates)
    }

    /// BNL over the packed window: candidates stream through 64-lane blocks, the dominator
    /// probe and the eviction sweep are both one pass of mask algebra per block, and evicted
    /// rows just lose their validity bit (lanes are never reused, so a lane index stays
    /// aligned with the side list of member ids). Falls back to the generic loop under
    /// [`KernelMode::Scalar`].
    fn bnl_skyline(&self, points: &[PointId]) -> Vec<PointId> {
        if kernel_mode() == KernelMode::Scalar {
            return crate::dominance::generic_bnl_skyline(self, points);
        }
        let mut lanes = PackedLanes::default();
        lanes.reset(self.block.numeric_dims(), self.block.nominal_dims());
        let mut members: Vec<PointId> = Vec::new();
        let mut probe: Vec<u16> = Vec::with_capacity(self.block.nominal_dims() * 2);
        // First still-valid lane; advances monotonically as evictions only clear bits.
        let mut first_valid = 0usize;
        // Local adaptive peek depth, tracking this scan's recent kill depths.
        let mut peek = PeekDepth::default();
        'points: for &p in points {
            // Scalar peek over the leading surviving members (see [`WINDOW_PEEK`]).
            while first_valid < members.len() && !lanes.is_valid(first_valid) {
                first_valid += 1;
            }
            let mut peeked = 0usize;
            for (l, &m) in members.iter().enumerate().skip(first_valid) {
                if peeked == peek.depth {
                    break;
                }
                if lanes.is_valid(l) {
                    if CompiledRelation::dominates(self, m, p) {
                        peek.observe(peeked + 1);
                        continue 'points;
                    }
                    peeked += 1;
                }
            }
            probe.clear();
            self.extend_nominal_keys(&mut probe, p);
            let pn = self.block.numeric_row(p);
            // Window members are mutually undominated, so when one dominates `p`, none can
            // be dominated by `p` (transitivity) — probing before evicting loses nothing.
            if let Some(l) = lanes.first_dominator(&self.orders, pn, &probe, lanes.len()) {
                peek.observe(l + 1);
                continue;
            }
            lanes.clear_dominated_by(&self.orders, pn, &probe, lanes.len());
            lanes.push(pn, &probe);
            members.push(p);
        }
        let mut skyline: Vec<PointId> = members
            .iter()
            .enumerate()
            .filter(|&(l, _)| lanes.is_valid(l))
            .map(|(_, &p)| p)
            .collect();
        skyline.sort_unstable();
        skyline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::order::ImplicitPreference;
    use crate::schema::Dimension;

    fn vacation_data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group) in [
            (1600.0, 4.0, "T"),
            (2400.0, 1.0, "T"),
            (3000.0, 5.0, "H"),
            (3600.0, 4.0, "H"),
            (2400.0, 2.0, "M"),
            (3000.0, 3.0, "M"),
        ] {
            b.push_row([
                crate::dataset::RowValue::Num(price),
                crate::dataset::RowValue::Num(-class),
                group.into(),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    /// The unranked (general partial order) window walk, including the mixed
    /// ranked/unranked case, against the reference context and the plain-id window.
    #[test]
    fn unranked_orders_take_the_probe_path_and_match_the_reference() {
        use crate::algo::sfs;
        use crate::score::ScoreFn;

        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal("g", crate::value::NominalDomain::anonymous(5)),
            Dimension::nominal("h", crate::value::NominalDomain::anonymous(3)),
        ])
        .unwrap();
        let mut data = Dataset::empty(schema);
        // Exhaustive little grid: every (g, h) combination at two numeric levels.
        for g in 0..5u16 {
            for h in 0..3u16 {
                data.push_row_ids(&[f64::from(g) + f64::from(h)], &[g, h])
                    .unwrap();
                data.push_row_ids(&[f64::from(5 - g)], &[g, h]).unwrap();
            }
        }
        // `g`: 0 ≺ 2 ≺ 1 plus the island 3 ≺ 4 — NOT a weak order (0 and 3 share a layer
        // with 1 and 4 incomparable across chains); `h`: implicit-style weak order.
        let g_order = PartialOrder::from_pairs(5, [(0, 2), (2, 1), (3, 4)]).unwrap();
        let h_order = PartialOrder::from_pairs(3, [(1, 0), (1, 2)]).unwrap();
        let template =
            Template::from_partial_orders(data.schema(), vec![g_order, h_order]).unwrap();

        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let kernel =
            CompiledRelation::for_template(Arc::new(PointBlock::new(&data)), &template).unwrap();
        assert!(!kernel.orders()[0].is_ranked(), "g must be unranked");
        assert!(kernel.orders()[1].is_ranked(), "h must be ranked");

        // Pairwise agreement plus the full elimination scan (dense window vs. id window).
        for p in data.point_ids() {
            for q in data.point_ids() {
                assert_eq!(kernel.dominates(p, q), ctx.dominates(p, q), "({p}, {q})");
                assert_eq!(kernel.compare(p, q), ctx.compare(p, q), "({p}, {q})");
            }
        }
        let score = ScoreFn::default_ranking(data.schema());
        let sorted = score.sort_by_score(&data, &data.point_ids().collect::<Vec<_>>());
        assert_eq!(
            sfs::scan_presorted(&kernel, &sorted),
            sfs::scan_presorted(&ctx, &sorted),
            "dense-window scan must match the reference scan on unranked orders"
        );
    }

    #[test]
    fn block_layout_roundtrips_the_dataset() {
        let data = vacation_data();
        let block = PointBlock::new(&data);
        assert_eq!(block.len(), 6);
        assert!(!block.is_empty());
        assert_eq!(block.numeric_dims(), 2);
        assert_eq!(block.nominal_dims(), 1);
        for p in data.point_ids() {
            assert_eq!(
                block.numeric_row(p),
                &[data.numeric(p, 0), data.numeric(p, 1)]
            );
            assert_eq!(block.nominal_row(p), &[data.nominal(p, 0)]);
        }
        assert_eq!(block.max_value, vec![2]);
        assert!(block.approximate_bytes() >= 6 * (2 * 8 + 2));
    }

    #[test]
    fn compiled_order_matches_partial_order() {
        let order = PartialOrder::from_pairs(5, [(0, 2), (2, 1), (3, 4)]).unwrap();
        let compiled = CompiledOrder::compile(&order);
        assert_eq!(compiled.cardinality(), 5);
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(
                    compiled.strictly_preferred(u, v),
                    order.strictly_preferred(u, v),
                    "({u}, {v})"
                );
                if order.strictly_preferred(u, v) {
                    assert!(
                        compiled.layer(u) < compiled.layer(v),
                        "layers of ({u}, {v})"
                    );
                }
            }
        }
        // Chain 0 ≺ 2 ≺ 1 produces layers 0, 2, 1; independent chain 3 ≺ 4 restarts at 0.
        assert_eq!(
            (0..5).map(|v| compiled.layer(v)).collect::<Vec<_>>(),
            vec![0, 2, 1, 0, 1]
        );
        assert!(compiled.approximate_bytes() > 0);
    }

    #[test]
    fn wide_domains_use_multiple_words_per_row() {
        let order = PartialOrder::from_pairs(70, [(0, 69), (69, 1)]).unwrap();
        let compiled = CompiledOrder::compile(&order);
        assert!(compiled.strictly_preferred(0, 69));
        assert!(compiled.strictly_preferred(69, 1));
        assert!(compiled.strictly_preferred(0, 1));
        assert!(!compiled.strictly_preferred(1, 0));
    }

    #[test]
    fn kernel_agrees_with_the_reference_context() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let query = Preference::from_dims(vec![ImplicitPreference::new([0, 2]).unwrap()]);
        let ctx = DominanceContext::for_query(&data, &template, &query).unwrap();
        let kernel = CompiledRelation::compile_query(&data, &template, &query).unwrap();
        for p in data.point_ids() {
            for q in data.point_ids() {
                assert_eq!(kernel.dominates(p, q), ctx.dominates(p, q), "({p}, {q})");
                assert_eq!(kernel.compare(p, q), ctx.compare(p, q), "({p}, {q})");
            }
        }
        assert!(kernel.dominated_by_any(1, &[0]));
        assert!(!kernel.dominated_by_any(0, &[]));
        assert_eq!(kernel.orders().len(), 1);
        assert_eq!(kernel.block().len(), 6);
        assert!(kernel.approximate_bytes() > 0);
    }

    #[test]
    fn from_context_shares_the_block() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let block = Arc::new(PointBlock::new(&data));
        let kernel = CompiledRelation::from_context(block.clone(), &ctx).unwrap();
        assert!(Arc::ptr_eq(kernel.block(), &block));
        assert!(kernel.dominates(0, 1));
        assert!(!kernel.dominates(0, 2));
    }

    #[test]
    fn validation_rejects_mismatched_orders() {
        let data = vacation_data();
        let block = Arc::new(PointBlock::new(&data));
        assert!(CompiledRelation::new(block.clone(), &[]).is_err());
        // Cardinality 2 cannot cover value id 2 present in the data.
        assert!(CompiledRelation::new(block.clone(), &[PartialOrder::empty(2)]).is_err());
        assert!(CompiledRelation::new(block, &[PartialOrder::empty(3)]).is_ok());
    }

    #[test]
    fn append_and_tombstone_bump_the_epoch_and_track_liveness() {
        let data = vacation_data();
        let mut block = PointBlock::new(&data);
        assert_eq!(block.epoch(), DatasetEpoch::INITIAL);
        assert_eq!(block.live_count(), 6);
        assert_eq!(block.live_ids().count(), 6);

        let p = block.append_row(&[1000.0, -5.0], &[1]).unwrap();
        assert_eq!(p, 6);
        assert_eq!(block.len(), 7);
        assert_eq!(block.live_count(), 7);
        assert_eq!(block.epoch().get(), 1);
        assert_eq!(block.numeric_row(p), &[1000.0, -5.0]);
        assert_eq!(block.nominal_row(p), &[1]);

        assert!(block.tombstone(2).unwrap());
        assert!(!block.is_live(2));
        assert_eq!(block.live_count(), 6);
        assert_eq!(block.epoch().get(), 2);
        assert!(!block.tombstone(2).unwrap(), "double tombstone is a no-op");
        assert_eq!(block.epoch().get(), 2, "no-op must not bump the epoch");
        assert!(block.tombstone(99).is_err());
        assert_eq!(block.live_ids().collect::<Vec<_>>(), vec![0, 1, 3, 4, 5, 6]);
        // Appends keep the max-value validation in sync.
        let mut grown = PointBlock::new(&data);
        grown.append_row(&[1.0, 1.0], &[2]).unwrap();
        assert!(grown.append_row(&[1.0], &[2]).is_err(), "arity checked");
        assert!(DatasetEpoch::INITIAL < grown.epoch());
        assert_eq!(format!("{}", grown.epoch()), "epoch 1");
    }

    #[test]
    fn compaction_reclaims_dead_rows_and_publishes_a_remap() {
        let data = vacation_data();
        let mut block = PointBlock::new(&data);
        assert_eq!(block.dead_count(), 0);
        assert_eq!(block.dead_ratio(), 0.0);
        block.tombstone(1).unwrap();
        block.tombstone(3).unwrap();
        let p = block.append_row(&[100.0, -9.0], &[2]).unwrap();
        assert_eq!(p, 6);
        assert_eq!(block.dead_count(), 2);
        assert!((block.dead_ratio() - 2.0 / 7.0).abs() < 1e-12);
        let before_epoch = block.epoch();

        let (compact, remap) = block.compacted();
        // Only live rows survive, all live, renumbered in order.
        assert_eq!(compact.len(), 5);
        assert_eq!(compact.live_count(), compact.len());
        assert_eq!(compact.dead_count(), 0);
        assert_eq!(
            compact.live_ids().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4],
            "every surviving row is live"
        );
        assert!(
            compact.epoch() > before_epoch,
            "renumbering moves the epoch"
        );
        // The remap round-trips: survivors keep their values under new ids.
        assert_eq!(remap.old_len(), 7);
        assert_eq!(remap.new_len(), 5);
        assert_eq!(remap.reclaimed(), 2);
        assert!(!remap.is_identity());
        assert_eq!(remap.new_id(0), Some(0));
        assert_eq!(remap.new_id(1), None, "reclaimed rows have no new id");
        assert_eq!(remap.new_id(2), Some(1));
        assert_eq!(remap.new_id(6), Some(4));
        assert_eq!(remap.new_id(99), None);
        assert_eq!(remap.old_id(4), Some(6));
        assert_eq!(remap.old_id(5), None);
        for new in 0..compact.len() as PointId {
            let old = remap.old_id(new).unwrap();
            assert_eq!(compact.numeric_row(new), block.numeric_row(old));
            assert_eq!(compact.nominal_row(new), block.nominal_row(old));
        }
        // Sorted translation stays sorted; lists naming a reclaimed row are unsalvageable.
        assert_eq!(remap.translate_ids(&[0, 2, 6]), Some(vec![0, 1, 4]));
        assert_eq!(remap.translate_ids(&[0, 1]), None);
        // max_value is recomputed over the survivors.
        assert_eq!(compact.max_value, vec![2]);
    }

    #[test]
    fn remap_extends_over_replayed_appends() {
        let data = vacation_data();
        let mut block = PointBlock::new(&data);
        block.tombstone(0).unwrap();
        let (mut compact, mut remap) = block.compacted();
        // A mutation that arrived mid-build is replayed onto the new block and recorded.
        let new = compact.append_row(&[1.0, 1.0], &[0]).unwrap();
        remap.push_appended(new);
        assert_eq!(remap.old_len(), 7);
        assert_eq!(remap.new_id(6), Some(5));
        assert_eq!(remap.old_id(5), Some(6));
        // An identity compaction (nothing dead) maps every id to itself.
        let (_, identity) = compact.compacted();
        assert!(identity.is_identity());
        assert_eq!(identity.translate_ids(&[0, 3, 5]), Some(vec![0, 3, 5]));
    }

    #[test]
    fn from_compiled_orders_matches_the_fresh_compilation() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let block = Arc::new(PointBlock::new(&data));
        let fresh = CompiledRelation::for_template(block.clone(), &template).unwrap();
        let reused =
            CompiledRelation::from_compiled_orders(block.clone(), fresh.orders().to_vec()).unwrap();
        for p in data.point_ids() {
            for q in data.point_ids() {
                assert_eq!(fresh.dominates(p, q), reused.dominates(p, q), "({p}, {q})");
            }
        }
        // Validation still applies: wrong count and undersized cardinality are rejected.
        assert!(CompiledRelation::from_compiled_orders(block.clone(), vec![]).is_err());
        let tiny = CompiledOrder::compile(&PartialOrder::empty(1));
        assert!(CompiledRelation::from_compiled_orders(block, vec![tiny]).is_err());
    }

    #[test]
    fn empty_dataset_accepts_any_cardinality() {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal_with_labels("g", ["a", "b"]),
        ])
        .unwrap();
        let data = Dataset::from_columns(schema, vec![vec![]], vec![vec![]]).unwrap();
        let block = Arc::new(PointBlock::new(&data));
        assert!(block.is_empty());
        assert!(CompiledRelation::new(block, &[PartialOrder::empty(0)]).is_ok());
    }

    /// A dataset whose skyline is large enough to push the dense window past several 64-lane
    /// blocks: an anti-correlated numeric staircase (all survive) interleaved with dominated
    /// fill rows (all killed, at varying window depths), over a 3-value nominal dimension.
    fn peek_stress_data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::numeric("y"),
            Dimension::nominal("g", crate::value::NominalDomain::anonymous(3)),
        ])
        .unwrap();
        let mut data = Dataset::empty(schema);
        for i in 0..200u16 {
            let a = f64::from(i);
            data.push_row_ids(&[a, 200.0 - a], &[i % 3]).unwrap();
            // Dominated by the staircase row above it (same group, both dims worse).
            data.push_row_ids(&[a + 0.5, 200.5 - a], &[i % 3]).unwrap();
        }
        data
    }

    /// Satellite: the scalar-peek depth is a pure performance knob. Packed and scalar scans
    /// must emit identical skylines at every pinned depth, including 0 (peek disabled) and 64
    /// (peek covers a whole lane block).
    #[test]
    fn packed_matches_scalar_at_every_pinned_peek_depth() {
        use crate::algo::sfs;
        use crate::score::ScoreFn;

        let data = peek_stress_data();
        let g_order = PartialOrder::from_pairs(3, [(0, 2)]).unwrap();
        let template = Template::from_partial_orders(data.schema(), vec![g_order]).unwrap();
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let kernel =
            CompiledRelation::for_template(Arc::new(PointBlock::new(&data)), &template).unwrap();
        let score = ScoreFn::default_ranking(data.schema());
        let all: Vec<PointId> = data.point_ids().collect();
        let sorted = score.sort_by_score(&data, &all);
        let reference = sfs::scan_presorted(&ctx, &sorted);
        let reference_bnl = ctx.bnl_skyline(&all);
        for depth in [0usize, 1, 2, 8, 32, 64] {
            with_window_peek(depth, || {
                for mode in [KernelMode::Packed, KernelMode::Scalar] {
                    with_kernel_mode(mode, || {
                        assert_eq!(
                            sfs::scan_presorted(&kernel, &sorted),
                            reference,
                            "scan mismatch at peek depth {depth} in {mode:?} mode"
                        );
                        assert_eq!(
                            kernel.bnl_skyline(&all),
                            reference_bnl,
                            "bnl mismatch at peek depth {depth} in {mode:?} mode"
                        );
                    });
                }
            });
        }
    }

    /// Satellite: adaptation tracks observed kill depths within bounds, and pinning (env or
    /// [`with_window_peek`]) freezes the depth.
    #[test]
    fn peek_depth_adapts_within_bounds_and_pinning_freezes_it() {
        let mut peek = PeekDepth::default();
        assert_eq!(peek.depth, WINDOW_PEEK, "seed depth");
        // A run of shallow kills drags the depth down to the floor, never below.
        for _ in 0..64 {
            peek.observe(1);
        }
        assert_eq!(peek.depth, WINDOW_PEEK_MIN);
        // A run of deep kills saturates at the ceiling, never above.
        for _ in 0..64 {
            peek.observe(1000);
        }
        assert_eq!(peek.depth, WINDOW_PEEK_MAX);
        // Mid-range kills settle near twice the typical depth.
        for _ in 0..64 {
            peek.observe(4);
        }
        assert_eq!(peek.depth, 8);

        // Pinning through the thread-local override freezes the depth against observations.
        with_window_peek(5, || {
            let mut pinned = PeekDepth::default();
            assert_eq!(pinned.depth, 5);
            for _ in 0..64 {
                pinned.observe(1000);
            }
            assert_eq!(pinned.depth, 5, "pinned depth must ignore observations");
        });
        // Outside the scope a fresh window adapts again.
        let mut fresh = PeekDepth::default();
        assert!(!fresh.pinned);
        fresh.observe(1000);
        assert_ne!(fresh.depth, WINDOW_PEEK);

        // reset_window resyncs the pin for windows created outside the override scope.
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let kernel =
            CompiledRelation::for_template(Arc::new(PointBlock::new(&data)), &template).unwrap();
        let mut window = DenseWindow::default();
        with_window_peek(3, || {
            kernel.reset_window(&mut window);
            assert!(window.peek.pinned);
            assert_eq!(window.peek.depth, 3);
        });
        kernel.reset_window(&mut window);
        assert!(!window.peek.pinned, "pin clears outside the scope");
    }
}
