//! Value identifiers and nominal value dictionaries.

use crate::error::{Result, SkylineError};
use std::collections::HashMap;

/// Index of a data point (row) inside a [`crate::Dataset`].
///
/// `u32` keeps hot structures (skyline lists, IPO-tree disqualifying sets, bitmaps) compact;
/// the paper's experiments top out at 10⁶ points.
pub type PointId = u32;

/// Identifier of a nominal value within the [`NominalDomain`] of one dimension.
///
/// Nominal cardinalities in the paper range from 4 (Nursery) to 40 (synthetic sweeps), so a
/// `u16` is ample while halving the footprint of nominal columns compared to `u32`.
pub type ValueId = u16;

/// Dictionary of the values of one nominal dimension.
///
/// A domain maps human-readable labels (e.g. `"Tulips"`, `"Horizon"`) to dense [`ValueId`]s
/// `0..cardinality`. All preference machinery works on ids; labels only matter at the API
/// boundary (building data, parsing preferences, formatting results).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NominalDomain {
    labels: Vec<String>,
    index: HashMap<String, ValueId>,
}

impl NominalDomain {
    /// Creates an empty domain. Values are added with [`NominalDomain::intern`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a domain from a list of labels. Duplicate labels are interned once.
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut domain = Self::new();
        for label in labels {
            domain.intern(label.into());
        }
        domain
    }

    /// Creates an anonymous domain of `cardinality` values labelled `"v0"`, `"v1"`, ….
    ///
    /// This is what the synthetic data generator uses: the experiments only care about the
    /// cardinality and the Zipfian frequency of value ids, not about the labels themselves.
    pub fn anonymous(cardinality: usize) -> Self {
        Self::from_labels((0..cardinality).map(|i| format!("v{i}")))
    }

    /// Returns the id for `label`, adding it to the domain if it is new.
    pub fn intern(&mut self, label: impl Into<String>) -> ValueId {
        let label = label.into();
        if let Some(&id) = self.index.get(&label) {
            return id;
        }
        let id = ValueId::try_from(self.labels.len()).expect("nominal cardinality exceeds u16");
        self.index.insert(label.clone(), id);
        self.labels.push(label);
        id
    }

    /// Looks up the id of `label`, if present.
    pub fn id_of(&self, label: &str) -> Option<ValueId> {
        self.index.get(label).copied()
    }

    /// Looks up the id of `label`, reporting a descriptive error mentioning `dimension`.
    pub fn require_id(&self, dimension: &str, label: &str) -> Result<ValueId> {
        self.id_of(label).ok_or_else(|| SkylineError::UnknownValue {
            dimension: dimension.to_string(),
            value: label.to_string(),
        })
    }

    /// Returns the label for a value id, if it is within the domain.
    pub fn label(&self, id: ValueId) -> Option<&str> {
        self.labels.get(id as usize).map(String::as_str)
    }

    /// Number of distinct values in the domain (the paper's cardinality `c`).
    pub fn cardinality(&self) -> usize {
        self.labels.len()
    }

    /// True when the domain has no values yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over `(id, label)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, label)| (i as ValueId, label.as_str()))
    }

    /// Rebuilds the label→id index. Only needed after deserializing with `serde`
    /// (the index is skipped during serialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, label)| (label.clone(), i as ValueId))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids() {
        let mut domain = NominalDomain::new();
        assert_eq!(domain.intern("T"), 0);
        assert_eq!(domain.intern("H"), 1);
        assert_eq!(domain.intern("M"), 2);
        assert_eq!(domain.cardinality(), 3);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut domain = NominalDomain::new();
        let a = domain.intern("Tulips");
        let b = domain.intern("Tulips");
        assert_eq!(a, b);
        assert_eq!(domain.cardinality(), 1);
    }

    #[test]
    fn lookup_roundtrip() {
        let domain = NominalDomain::from_labels(["T", "H", "M"]);
        assert_eq!(domain.id_of("H"), Some(1));
        assert_eq!(domain.label(2), Some("M"));
        assert_eq!(domain.id_of("Z"), None);
        assert_eq!(domain.label(9), None);
    }

    #[test]
    fn require_id_reports_dimension() {
        let domain = NominalDomain::from_labels(["T"]);
        let err = domain.require_id("hotel-group", "Z").unwrap_err();
        assert_eq!(
            err,
            SkylineError::UnknownValue {
                dimension: "hotel-group".into(),
                value: "Z".into()
            }
        );
    }

    #[test]
    fn anonymous_domain_has_requested_cardinality() {
        let domain = NominalDomain::anonymous(20);
        assert_eq!(domain.cardinality(), 20);
        assert_eq!(domain.id_of("v7"), Some(7));
    }

    #[test]
    fn from_labels_dedups() {
        let domain = NominalDomain::from_labels(["a", "b", "a"]);
        assert_eq!(domain.cardinality(), 2);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let domain = NominalDomain::from_labels(["x", "y"]);
        let pairs: Vec<_> = domain.iter().collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut domain = NominalDomain::from_labels(["a", "b"]);
        domain.index.clear();
        assert_eq!(domain.id_of("b"), None);
        domain.rebuild_index();
        assert_eq!(domain.id_of("b"), Some(1));
    }
}
