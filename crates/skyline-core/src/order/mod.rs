//! User preference orders.
//!
//! The paper models a user's preference on a nominal attribute as a **strict partial order**
//! over the attribute's values ([`PartialOrder`]), and observes that in practice users state an
//! **implicit preference** `v1 ≺ v2 ≺ … ≺ vx ≺ *` ([`ImplicitPreference`], Definition 2): the
//! listed values beat every other value, in the listed order, while unlisted values remain
//! mutually incomparable.
//!
//! A [`Preference`] bundles one implicit preference per nominal dimension (possibly empty =
//! "no special preference", like Bob in Table 2). A [`Template`] is the preference information
//! shared by *all* users (Section 2); each query must refine it.

mod canon;
mod implicit;
mod partial_order;
mod template;

pub use canon::CanonicalPreference;
pub use implicit::{ImplicitPreference, Preference};
pub use partial_order::PartialOrder;
pub use template::Template;
