//! Implicit preferences (`v1 ≺ v2 ≺ … ≺ vx ≺ *`) and per-query preference profiles.

use crate::error::{Result, SkylineError};
use crate::order::PartialOrder;
use crate::schema::Schema;
use crate::value::ValueId;
use std::fmt;

/// An implicit preference on one nominal dimension (Definition 2 of the paper).
///
/// The user lists their `x` favourite values in order; every listed value is preferred to
/// every unlisted value, and the listed values are totally ordered among themselves. Unlisted
/// values stay mutually incomparable. An empty list means "no special preference".
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ImplicitPreference {
    choices: Vec<ValueId>,
}

impl ImplicitPreference {
    /// The empty preference (`∗` only): no value is preferred to any other.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a preference from the ordered list of favourite value ids.
    /// Fails if a value appears twice.
    pub fn new<I: IntoIterator<Item = ValueId>>(choices: I) -> Result<Self> {
        let choices: Vec<ValueId> = choices.into_iter().collect();
        let mut seen = std::collections::HashSet::new();
        for &v in &choices {
            if !seen.insert(v) {
                return Err(SkylineError::DuplicatePreferenceValue {
                    dimension: String::new(),
                    value: v as u32,
                });
            }
        }
        Ok(Self { choices })
    }

    /// A first-order preference `v ≺ ∗`.
    pub fn first_order(v: ValueId) -> Self {
        Self { choices: vec![v] }
    }

    /// The ordered list of favourite values (`v1 … vx`).
    pub fn choices(&self) -> &[ValueId] {
        &self.choices
    }

    /// The order `x` of the preference (Definition 2): the number of listed values.
    pub fn order(&self) -> usize {
        self.choices.len()
    }

    /// True when no value is listed (no special preference).
    pub fn is_none(&self) -> bool {
        self.choices.is_empty()
    }

    /// True when `v` is one of the listed values ("v is in R̃ᵢ" in the paper).
    pub fn contains(&self, v: ValueId) -> bool {
        self.choices.contains(&v)
    }

    /// 0-based position of `v` among the listed values.
    pub fn position(&self, v: ValueId) -> Option<usize> {
        self.choices.iter().position(|&c| c == v)
    }

    /// The `j`-th entry (1-based, following the paper's wording) of the preference.
    pub fn entry(&self, j: usize) -> Option<ValueId> {
        if j == 0 {
            None
        } else {
            self.choices.get(j - 1).copied()
        }
    }

    /// Ranking of a value under this preference (Section 4.2): listed values get ranks
    /// `1..=x` by position; every unlisted value gets rank `cardinality`.
    ///
    /// The resulting rank is monotone with respect to the induced partial order: if
    /// `u ≺ v` can be derived from the preference then `rank(u) < rank(v)`.
    pub fn rank(&self, v: ValueId, cardinality: usize) -> u32 {
        match self.position(v) {
            Some(i) => (i + 1) as u32,
            None => cardinality as u32,
        }
    }

    /// Validates that every listed value is inside a domain of the given cardinality.
    pub fn validate(&self, cardinality: usize) -> Result<()> {
        for &v in &self.choices {
            if v as usize >= cardinality {
                return Err(SkylineError::ValueOutOfDomain {
                    dimension: String::new(),
                    value: v as u32,
                    cardinality,
                });
            }
        }
        Ok(())
    }

    /// `P(R̃ᵢ)`: the equivalent strict partial order — `{(vᵢ, vⱼ) | i < j, i ≤ x, j ≤ k}`.
    pub fn to_partial_order(&self, cardinality: usize) -> Result<PartialOrder> {
        self.validate(cardinality)?;
        let mut pairs = Vec::new();
        for (i, &vi) in self.choices.iter().enumerate() {
            // Better than every later listed value…
            for &vj in &self.choices[i + 1..] {
                pairs.push((vi, vj));
            }
            // …and better than every unlisted value.
            for w in 0..cardinality as ValueId {
                if !self.contains(w) {
                    pairs.push((vi, w));
                }
            }
        }
        PartialOrder::from_pairs(cardinality, pairs)
    }

    /// True when `self` refines `other`: for implicit preferences this is exactly "the choice
    /// list of `other` is a prefix of the choice list of `self`".
    pub fn refines(&self, other: &ImplicitPreference) -> bool {
        self.choices.len() >= other.choices.len()
            && self.choices[..other.choices.len()] == other.choices[..]
    }

    /// The number of listed values shared as a common prefix with `other`.
    pub fn common_prefix_len(&self, other: &ImplicitPreference) -> usize {
        self.choices
            .iter()
            .zip(&other.choices)
            .take_while(|(a, b)| a == b)
            .count()
    }
}

impl fmt::Display for ImplicitPreference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.choices.is_empty() {
            return write!(f, "*");
        }
        for v in &self.choices {
            write!(f, "{v} < ")?;
        }
        write!(f, "*")
    }
}

/// A full query preference: one [`ImplicitPreference`] per nominal dimension
/// (`R̃ = (R̃1, …, R̃m')` in the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Preference {
    dims: Vec<ImplicitPreference>,
}

impl Preference {
    /// A preference with no special choices on any of the `nominal_count` dimensions.
    pub fn none(nominal_count: usize) -> Self {
        Self {
            dims: vec![ImplicitPreference::none(); nominal_count],
        }
    }

    /// Builds a preference from one implicit preference per nominal dimension.
    pub fn from_dims(dims: Vec<ImplicitPreference>) -> Self {
        Self { dims }
    }

    /// Number of nominal dimensions this preference covers.
    pub fn nominal_count(&self) -> usize {
        self.dims.len()
    }

    /// The implicit preference on the `j`-th nominal dimension.
    pub fn dim(&self, nominal_index: usize) -> &ImplicitPreference {
        &self.dims[nominal_index]
    }

    /// All per-dimension implicit preferences.
    pub fn dims(&self) -> &[ImplicitPreference] {
        &self.dims
    }

    /// Replaces the preference on the `j`-th nominal dimension (builder style).
    pub fn with_dim(mut self, nominal_index: usize, pref: ImplicitPreference) -> Self {
        self.dims[nominal_index] = pref;
        self
    }

    /// Sets the preference on the `j`-th nominal dimension in place.
    pub fn set_dim(&mut self, nominal_index: usize, pref: ImplicitPreference) {
        self.dims[nominal_index] = pref;
    }

    /// The order of the preference: `maxᵢ order(R̃ᵢ)` (Definition 2).
    pub fn order(&self) -> usize {
        self.dims
            .iter()
            .map(ImplicitPreference::order)
            .max()
            .unwrap_or(0)
    }

    /// True when no dimension lists any value.
    pub fn is_none(&self) -> bool {
        self.dims.iter().all(ImplicitPreference::is_none)
    }

    /// Validates the preference against a schema: correct number of nominal dimensions and all
    /// listed values inside their domains.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if self.dims.len() != schema.nominal_count() {
            return Err(SkylineError::InvalidArgument(format!(
                "preference covers {} nominal dimensions but the schema has {}",
                self.dims.len(),
                schema.nominal_count()
            )));
        }
        for (j, pref) in self.dims.iter().enumerate() {
            let card = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            pref.validate(card).map_err(|e| match e {
                SkylineError::ValueOutOfDomain {
                    value, cardinality, ..
                } => SkylineError::ValueOutOfDomain {
                    dimension: schema.nominal_dimension_name(j),
                    value,
                    cardinality,
                },
                other => other,
            })?;
        }
        Ok(())
    }

    /// `P(R̃)`: the per-dimension strict partial orders equivalent to this preference.
    pub fn to_partial_orders(&self, schema: &Schema) -> Result<Vec<PartialOrder>> {
        self.validate(schema)?;
        self.dims
            .iter()
            .enumerate()
            .map(|(j, pref)| {
                let card = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
                pref.to_partial_order(card)
            })
            .collect()
    }

    /// True when `self` refines `other` dimension by dimension (prefix containment).
    pub fn refines(&self, other: &Preference) -> bool {
        self.dims.len() == other.dims.len()
            && self.dims.iter().zip(&other.dims).all(|(a, b)| a.refines(b))
    }

    /// Parses a preference from `(dimension name, preference text)` pairs, e.g.
    /// `[("hotel-group", "T < M < *"), ("airline", "G < *")]`. Dimensions not mentioned keep
    /// "no special preference". Accepts `<`, `≺` or `,` as separators; the trailing `*` is
    /// optional; `"*"` or an empty string mean no preference.
    pub fn parse<'a, I>(schema: &Schema, specs: I) -> Result<Preference>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut pref = Preference::none(schema.nominal_count());
        for (dim_name, text) in specs {
            let j = schema.nominal_index_by_name(dim_name)?;
            let domain = schema
                .nominal_domain(j)
                .ok_or_else(|| SkylineError::UnknownDimension(dim_name.to_string()))?;
            let parsed = parse_implicit(text, |label| domain.require_id(dim_name, label))?;
            pref.set_dim(j, parsed);
        }
        pref.validate(schema)?;
        Ok(pref)
    }

    /// Formats the preference using the schema's dimension names and value labels.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> PreferenceDisplay<'a> {
        PreferenceDisplay { pref: self, schema }
    }

    /// The canonical cache key of this preference over `schema`: equivalent preferences (same
    /// induced partial orders) map to equal keys. See [`crate::order::CanonicalPreference`].
    pub fn canonicalize(&self, schema: &Schema) -> Result<crate::order::CanonicalPreference> {
        crate::order::CanonicalPreference::new(schema, self)
    }
}

/// Helper returned by [`Preference::display`].
pub struct PreferenceDisplay<'a> {
    pref: &'a Preference,
    schema: &'a Schema,
}

impl fmt::Display for PreferenceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (j, dim_pref) in self.pref.dims.iter().enumerate() {
            if dim_pref.is_none() {
                continue;
            }
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            let schema_index = self.schema.schema_index_of_nominal(j).unwrap_or(0);
            let name = self
                .schema
                .dimension(schema_index)
                .map(|d| d.name())
                .unwrap_or("?");
            write!(f, "{name}: ")?;
            let domain = self.schema.nominal_domain(j);
            for v in dim_pref.choices() {
                let label = domain.and_then(|d| d.label(*v)).unwrap_or("?");
                write!(f, "{label} < ")?;
            }
            write!(f, "*")?;
        }
        if first {
            write!(f, "(no special preference)")?;
        }
        Ok(())
    }
}

/// Parses one implicit preference text such as `"T < M < *"`.
fn parse_implicit(
    text: &str,
    mut resolve: impl FnMut(&str) -> Result<ValueId>,
) -> Result<ImplicitPreference> {
    let normalized = text.replace(['≺', ','], "<");
    let tokens: Vec<&str> = normalized
        .split('<')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect();
    let mut choices = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if *token == "*" {
            if i != tokens.len() - 1 {
                return Err(SkylineError::ParseError(format!(
                    "`*` must be the last entry in preference `{text}`"
                )));
            }
            break;
        }
        choices.push(resolve(token)?);
    }
    ImplicitPreference::new(choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Dimension, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap()
    }

    #[test]
    fn implicit_basics() {
        let pref = ImplicitPreference::new([0, 2]).unwrap();
        assert_eq!(pref.order(), 2);
        assert!(pref.contains(2));
        assert!(!pref.contains(1));
        assert_eq!(pref.position(2), Some(1));
        assert_eq!(pref.entry(1), Some(0));
        assert_eq!(pref.entry(2), Some(2));
        assert_eq!(pref.entry(0), None);
        assert_eq!(pref.entry(3), None);
        assert!(!pref.is_none());
        assert!(ImplicitPreference::none().is_none());
    }

    #[test]
    fn duplicates_rejected() {
        let err = ImplicitPreference::new([1, 1]).unwrap_err();
        assert!(matches!(
            err,
            SkylineError::DuplicatePreferenceValue { value: 1, .. }
        ));
    }

    #[test]
    fn ranks_follow_the_paper() {
        // cardinality 10: listed values rank 1..x, everything else ranks 10.
        let pref = ImplicitPreference::new([7, 3]).unwrap();
        assert_eq!(pref.rank(7, 10), 1);
        assert_eq!(pref.rank(3, 10), 2);
        assert_eq!(pref.rank(0, 10), 10);
        assert_eq!(ImplicitPreference::none().rank(4, 10), 10);
    }

    #[test]
    fn implicit_to_partial_order_matches_definition_2() {
        // "H ≺ M ≺ *" over {T=0, H=1, M=2} ⇒ {(H,M), (H,T), (M,T)}
        let pref = ImplicitPreference::new([1, 2]).unwrap();
        let order = pref.to_partial_order(3).unwrap();
        let mut pairs: Vec<_> = order.pairs().collect();
        pairs.sort();
        assert_eq!(pairs, vec![(1, 0), (1, 2), (2, 0)]);
    }

    #[test]
    fn empty_preference_gives_empty_order() {
        let order = ImplicitPreference::none().to_partial_order(5).unwrap();
        assert!(order.is_empty());
    }

    #[test]
    fn full_list_gives_total_order() {
        let pref = ImplicitPreference::new([2, 0, 1]).unwrap();
        let order = pref.to_partial_order(3).unwrap();
        assert!(order.is_total());
        assert!(order.strictly_preferred(2, 0));
        assert!(order.strictly_preferred(0, 1));
    }

    #[test]
    fn refinement_is_prefix_containment() {
        let t = ImplicitPreference::new([0]).unwrap();
        let tm = ImplicitPreference::new([0, 2]).unwrap();
        let mt = ImplicitPreference::new([2, 0]).unwrap();
        assert!(tm.refines(&t));
        assert!(tm.refines(&ImplicitPreference::none()));
        assert!(!t.refines(&tm));
        assert!(!mt.refines(&t));
        assert_eq!(tm.common_prefix_len(&t), 1);
        assert_eq!(mt.common_prefix_len(&tm), 0);
    }

    #[test]
    fn preference_profile_order_and_validation() {
        let schema = schema();
        let pref = Preference::none(2)
            .with_dim(0, ImplicitPreference::new([2, 1]).unwrap())
            .with_dim(1, ImplicitPreference::new([0]).unwrap());
        assert_eq!(pref.order(), 2);
        pref.validate(&schema).unwrap();

        let bad = Preference::none(1);
        assert!(bad.validate(&schema).is_err());

        let out_of_domain = Preference::none(2).with_dim(0, ImplicitPreference::new([9]).unwrap());
        assert!(matches!(
            out_of_domain.validate(&schema),
            Err(SkylineError::ValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn parse_textual_preferences() {
        let schema = schema();
        let pref = Preference::parse(
            &schema,
            [("hotel-group", "M < H < *"), ("airline", "G < *")],
        )
        .unwrap();
        assert_eq!(pref.dim(0).choices(), &[2, 1]);
        assert_eq!(pref.dim(1).choices(), &[0]);

        let none = Preference::parse(&schema, [("hotel-group", "*")]).unwrap();
        assert!(none.is_none());

        assert!(Preference::parse(&schema, [("hotel-group", "Z < *")]).is_err());
        assert!(Preference::parse(&schema, [("price", "1 < *")]).is_err());
        assert!(Preference::parse(&schema, [("hotel-group", "* < M")]).is_err());
        assert!(Preference::parse(&schema, [("missing", "M < *")]).is_err());
    }

    #[test]
    fn parse_accepts_unicode_and_commas() {
        let schema = schema();
        let a = Preference::parse(&schema, [("hotel-group", "M ≺ H ≺ *")]).unwrap();
        let b = Preference::parse(&schema, [("hotel-group", "M, H")]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn profile_refinement() {
        let template = Preference::none(2).with_dim(0, ImplicitPreference::new([1]).unwrap());
        let query = Preference::none(2)
            .with_dim(0, ImplicitPreference::new([1, 2]).unwrap())
            .with_dim(1, ImplicitPreference::new([0]).unwrap());
        assert!(query.refines(&template));
        assert!(!template.refines(&query));
        let conflicting = Preference::none(2).with_dim(0, ImplicitPreference::new([2, 1]).unwrap());
        assert!(!conflicting.refines(&template));
    }

    #[test]
    fn display_uses_labels() {
        let schema = schema();
        let pref = Preference::parse(&schema, [("hotel-group", "M < H < *")]).unwrap();
        let text = format!("{}", pref.display(&schema));
        assert_eq!(text, "hotel-group: M < H < *");
        let none = Preference::none(2);
        assert_eq!(
            format!("{}", none.display(&schema)),
            "(no special preference)"
        );
        assert_eq!(
            format!("{}", ImplicitPreference::new([3, 1]).unwrap()),
            "3 < 1 < *"
        );
        assert_eq!(format!("{}", ImplicitPreference::none()), "*");
    }

    #[test]
    fn to_partial_orders_per_dimension() {
        let schema = schema();
        let pref = Preference::parse(&schema, [("airline", "R < *")]).unwrap();
        let orders = pref.to_partial_orders(&schema).unwrap();
        assert_eq!(orders.len(), 2);
        assert!(orders[0].is_empty());
        assert!(orders[1].strictly_preferred(1, 0));
        assert!(orders[1].strictly_preferred(1, 2));
        assert_eq!(orders[1].pair_count(), 2);
    }
}
