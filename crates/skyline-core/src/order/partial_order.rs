//! Strict partial orders over the value ids of one nominal dimension.

use crate::bitset::BitSet;
use crate::error::{Result, SkylineError};
use crate::value::ValueId;

/// A strict partial order `≺` over the value ids `0..cardinality` of one nominal dimension.
///
/// The relation is stored as its transitive closure: `better[u]` is the set of values `v`
/// with `u ≺ v` (`u` strictly preferred to `v`). Cardinalities are tiny in this problem
/// (4–40 in the paper's experiments), so the closure costs a few hundred bytes per dimension
/// and makes every dominance test an O(1) bit probe.
///
/// Construction enforces irreflexivity/asymmetry by rejecting pair sets whose closure would
/// contain a cycle (which is exactly when asymmetry would break).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialOrder {
    cardinality: usize,
    better: Vec<BitSet>,
}

impl PartialOrder {
    /// The empty order (no value preferred to any other) over `cardinality` values.
    pub fn empty(cardinality: usize) -> Self {
        Self {
            cardinality,
            better: vec![BitSet::new(cardinality); cardinality],
        }
    }

    /// Builds an order from explicit `(preferred, less_preferred)` pairs and closes it
    /// transitively. Fails with [`SkylineError::CyclicOrder`] if the pairs are cyclic and with
    /// [`SkylineError::ValueOutOfDomain`] if a pair mentions a value outside `0..cardinality`.
    pub fn from_pairs<I>(cardinality: usize, pairs: I) -> Result<Self>
    where
        I: IntoIterator<Item = (ValueId, ValueId)>,
    {
        let mut order = Self::empty(cardinality);
        order.add_pairs(pairs)?;
        Ok(order)
    }

    /// Adds pairs to the order and re-closes it. Rolls back nothing on failure, so callers that
    /// need atomicity should clone first (orders are tiny).
    pub fn add_pairs<I>(&mut self, pairs: I) -> Result<()>
    where
        I: IntoIterator<Item = (ValueId, ValueId)>,
    {
        for (u, v) in pairs {
            for value in [u, v] {
                if value as usize >= self.cardinality {
                    return Err(SkylineError::ValueOutOfDomain {
                        dimension: String::new(),
                        value: value as u32,
                        cardinality: self.cardinality,
                    });
                }
            }
            if u != v {
                self.better[u as usize].insert(v as usize);
            }
        }
        self.close_transitively();
        if (0..self.cardinality).any(|u| self.better[u].contains(u)) {
            return Err(SkylineError::CyclicOrder {
                dimension: String::new(),
            });
        }
        Ok(())
    }

    /// Warshall-style closure using bit-parallel row unions: if `u ≺ k` then `better[u] ∪= better[k]`.
    fn close_transitively(&mut self) {
        for k in 0..self.cardinality {
            let row_k = self.better[k].clone();
            for u in 0..self.cardinality {
                if u != k && self.better[u].contains(k) {
                    self.better[u].union_with(&row_k);
                }
            }
        }
    }

    /// Number of values in the dimension's domain.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// True when the order contains no pair at all.
    pub fn is_empty(&self) -> bool {
        self.better.iter().all(BitSet::is_empty)
    }

    /// Number of strict pairs `(u, v)` with `u ≺ v` in the closure.
    pub fn pair_count(&self) -> usize {
        self.better.iter().map(BitSet::count).sum()
    }

    /// True when `u ≺ v` (strictly preferred).
    #[inline]
    pub fn strictly_preferred(&self, u: ValueId, v: ValueId) -> bool {
        self.better[u as usize].contains(v as usize)
    }

    /// True when `u ⪯ v` (equal or strictly preferred).
    #[inline]
    pub fn preferred_or_equal(&self, u: ValueId, v: ValueId) -> bool {
        u == v || self.strictly_preferred(u, v)
    }

    /// True when `u` and `v` are distinct and unrelated in the order.
    pub fn incomparable(&self, u: ValueId, v: ValueId) -> bool {
        u != v && !self.strictly_preferred(u, v) && !self.strictly_preferred(v, u)
    }

    /// Iterates over all pairs `(u, v)` with `u ≺ v` in the closure.
    pub fn pairs(&self) -> impl Iterator<Item = (ValueId, ValueId)> + '_ {
        self.better
            .iter()
            .enumerate()
            .flat_map(|(u, row)| row.iter().map(move |v| (u as ValueId, v as ValueId)))
    }

    /// True when the order is total: every two distinct values are related.
    pub fn is_total(&self) -> bool {
        (0..self.cardinality as ValueId)
            .all(|u| (0..self.cardinality as ValueId).all(|v| u == v || !self.incomparable(u, v)))
    }

    /// Containment of orders (Section 2): `self ⊆ other`, i.e. `other` refines `self`.
    pub fn is_contained_in(&self, other: &PartialOrder) -> bool {
        debug_assert_eq!(self.cardinality, other.cardinality);
        self.better
            .iter()
            .zip(&other.better)
            .all(|(a, b)| a.is_subset_of(b))
    }

    /// True when `other` is a refinement of `self` (same as [`PartialOrder::is_contained_in`]
    /// read in the other direction, provided for readability at call sites).
    pub fn is_refined_by(&self, other: &PartialOrder) -> bool {
        self.is_contained_in(other)
    }

    /// Definition 1: two orders are conflict-free when no pair `(u, v)` of one appears reversed
    /// in the other.
    pub fn conflict_free_with(&self, other: &PartialOrder) -> bool {
        debug_assert_eq!(self.cardinality, other.cardinality);
        self.pairs().all(|(u, v)| !other.strictly_preferred(v, u))
    }

    /// Union of two orders followed by transitive closure. Fails when the union is cyclic,
    /// which in particular happens whenever the orders are not conflict-free.
    pub fn union(&self, other: &PartialOrder) -> Result<PartialOrder> {
        debug_assert_eq!(self.cardinality, other.cardinality);
        let mut merged = self.clone();
        merged.add_pairs(other.pairs())?;
        Ok(merged)
    }

    /// Approximate heap footprint in bytes (used for storage accounting).
    pub fn approximate_bytes(&self) -> usize {
        self.better.iter().map(BitSet::approximate_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_order_relates_nothing() {
        let order = PartialOrder::empty(3);
        assert!(order.is_empty());
        assert_eq!(order.pair_count(), 0);
        assert!(order.incomparable(0, 1));
        assert!(order.preferred_or_equal(2, 2));
        assert!(!order.strictly_preferred(0, 1));
        assert!(!order.is_total());
    }

    #[test]
    fn transitive_closure_is_computed() {
        // T ≺ M, M ≺ H  =>  T ≺ H
        let order = PartialOrder::from_pairs(3, [(0, 2), (2, 1)]).unwrap();
        assert!(order.strictly_preferred(0, 2));
        assert!(order.strictly_preferred(2, 1));
        assert!(order.strictly_preferred(0, 1));
        assert_eq!(order.pair_count(), 3);
        assert!(order.is_total());
    }

    #[test]
    fn cycles_are_rejected() {
        let err = PartialOrder::from_pairs(3, [(0, 1), (1, 2), (2, 0)]).unwrap_err();
        assert!(matches!(err, SkylineError::CyclicOrder { .. }));
        let err = PartialOrder::from_pairs(2, [(0, 1), (1, 0)]).unwrap_err();
        assert!(matches!(err, SkylineError::CyclicOrder { .. }));
    }

    #[test]
    fn self_pairs_are_ignored() {
        let order = PartialOrder::from_pairs(2, [(1, 1)]).unwrap();
        assert!(order.is_empty());
    }

    #[test]
    fn out_of_domain_pairs_are_rejected() {
        let err = PartialOrder::from_pairs(2, [(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            SkylineError::ValueOutOfDomain { value: 5, .. }
        ));
    }

    #[test]
    fn containment_and_refinement() {
        // R = {(T, M)}  ⊆  R' = {(T, M), (H, M)}   (example from Section 2)
        let r = PartialOrder::from_pairs(3, [(0, 2)]).unwrap();
        let r_prime = PartialOrder::from_pairs(3, [(0, 2), (1, 2)]).unwrap();
        assert!(r.is_contained_in(&r_prime));
        assert!(r.is_refined_by(&r_prime));
        assert!(!r_prime.is_contained_in(&r));
        assert!(r.is_contained_in(&r));
    }

    #[test]
    fn conflict_freedom() {
        let m_first = PartialOrder::from_pairs(3, [(2, 1), (2, 0)]).unwrap(); // M ≺ *
        let h_first = PartialOrder::from_pairs(3, [(1, 2), (1, 0)]).unwrap(); // H ≺ *
                                                                              // They disagree on (M, H) vs (H, M): not conflict-free (Figure 1 discussion).
        assert!(!m_first.conflict_free_with(&h_first));
        assert!(!h_first.conflict_free_with(&m_first));
        // T ≺ M and H ≺ M never reverse each other's pairs.
        let t_over_m = PartialOrder::from_pairs(3, [(0, 2)]).unwrap();
        let h_over_m = PartialOrder::from_pairs(3, [(1, 2)]).unwrap();
        assert!(t_over_m.conflict_free_with(&h_over_m));
        assert!(t_over_m.conflict_free_with(&PartialOrder::empty(3)));
    }

    #[test]
    fn union_detects_conflicts_as_cycles() {
        let m_first = PartialOrder::from_pairs(3, [(2, 1), (2, 0)]).unwrap();
        let h_first = PartialOrder::from_pairs(3, [(1, 2), (1, 0)]).unwrap();
        assert!(m_first.union(&h_first).is_err());
        // M ≺ *  ∪  T ≺ H  is consistent and closes to M ≺ H, M ≺ T, T ≺ H.
        let t_over_h = PartialOrder::from_pairs(3, [(0, 1)]).unwrap();
        let merged = m_first.union(&t_over_h).unwrap();
        assert!(merged.strictly_preferred(2, 1));
        assert!(merged.strictly_preferred(2, 0));
        assert!(merged.strictly_preferred(0, 1));
        assert_eq!(merged.pair_count(), 3);
    }

    #[test]
    fn pairs_roundtrip() {
        let order = PartialOrder::from_pairs(4, [(1, 0), (1, 2), (1, 3)]).unwrap();
        let mut pairs: Vec<_> = order.pairs().collect();
        pairs.sort();
        assert_eq!(pairs, vec![(1, 0), (1, 2), (1, 3)]);
        let rebuilt = PartialOrder::from_pairs(4, pairs).unwrap();
        assert_eq!(rebuilt, order);
    }

    #[test]
    fn approximate_bytes_nonzero() {
        let order = PartialOrder::empty(20);
        assert!(order.approximate_bytes() >= 20 * 8 / 8);
    }
}
