//! Templates: the preference information shared by all users.

use crate::dataset::Dataset;
use crate::error::{Result, SkylineError};
use crate::order::{ImplicitPreference, PartialOrder, Preference};
use crate::schema::Schema;

/// The template `R` of Section 2: a partial order per nominal dimension that holds for every
/// user. Each individual query refines the template with its own implicit preference.
///
/// Two common templates:
///
/// * [`Template::empty`] — no universal preference on any nominal value (the example of
///   Table 1/2 and Figure 2);
/// * [`Template::most_frequent_value`] — the paper's experimental default, where the most
///   frequent value of each nominal dimension is universally preferred to all others
///   ("this corresponds to a more difficult setting as the skyline tends to be bigger").
///
/// A template keeps both the general partial-order form (used for dominance and MDC
/// computation) and, when it was built from an implicit preference, the implicit form
/// (used by Adaptive SFS for its base ranking and refinement checks).
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    orders: Vec<PartialOrder>,
    implicit: Option<Preference>,
}

impl Template {
    /// A template with no universal nominal preference.
    pub fn empty(schema: &Schema) -> Self {
        let orders = schema
            .nominal_cardinalities()
            .into_iter()
            .map(PartialOrder::empty)
            .collect();
        Self {
            orders,
            implicit: Some(Preference::none(schema.nominal_count())),
        }
    }

    /// A template built from an implicit preference profile.
    pub fn from_preference(schema: &Schema, pref: Preference) -> Result<Self> {
        let orders = pref.to_partial_orders(schema)?;
        Ok(Self {
            orders,
            implicit: Some(pref),
        })
    }

    /// A template built from arbitrary per-dimension partial orders (general model of §2).
    pub fn from_partial_orders(schema: &Schema, orders: Vec<PartialOrder>) -> Result<Self> {
        if orders.len() != schema.nominal_count() {
            return Err(SkylineError::InvalidArgument(format!(
                "template has {} orders but the schema has {} nominal dimensions",
                orders.len(),
                schema.nominal_count()
            )));
        }
        for (j, order) in orders.iter().enumerate() {
            let card = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            if order.cardinality() != card {
                return Err(SkylineError::InvalidArgument(format!(
                    "template order on nominal dimension {j} has cardinality {} but the domain has {card}",
                    order.cardinality()
                )));
            }
        }
        Ok(Self {
            orders,
            implicit: None,
        })
    }

    /// The paper's experimental default: on every nominal dimension, the most frequent value
    /// is universally preferred to all other values (a first-order implicit preference).
    pub fn most_frequent_value(dataset: &Dataset) -> Result<Self> {
        let schema = dataset.schema();
        let mut pref = Preference::none(schema.nominal_count());
        for j in 0..schema.nominal_count() {
            if let Some(&top) = dataset.values_by_frequency(j).first() {
                pref.set_dim(j, ImplicitPreference::first_order(top));
            }
        }
        Template::from_preference(schema, pref)
    }

    /// Per-dimension partial orders of the template.
    pub fn orders(&self) -> &[PartialOrder] {
        &self.orders
    }

    /// The template order on the `j`-th nominal dimension.
    pub fn order(&self, nominal_index: usize) -> &PartialOrder {
        &self.orders[nominal_index]
    }

    /// Number of nominal dimensions covered.
    pub fn nominal_count(&self) -> usize {
        self.orders.len()
    }

    /// The implicit form of the template, when it was built from one.
    pub fn implicit(&self) -> Option<&Preference> {
        self.implicit.as_ref()
    }

    /// True when the template imposes no nominal preference at all.
    pub fn is_empty(&self) -> bool {
        self.orders.iter().all(PartialOrder::is_empty)
    }

    /// Checks the prefix-refinement property the paper assumes for implicit templates: the
    /// template's listed values must be a prefix of the query's on every dimension.
    ///
    /// Shared by dominance setup ([`Template::effective_orders`]), the materialized query
    /// structures and the serving layer, so "does this query refine the template?" has one
    /// answer (and one error message) everywhere. General (non-implicit) templates always
    /// pass; they are checked for conflict-freedom per query instead.
    pub fn check_refinement(&self, schema: &Schema, query: &Preference) -> Result<()> {
        let Some(implicit) = &self.implicit else {
            return Ok(());
        };
        if implicit.is_none() || query.refines(implicit) {
            return Ok(());
        }
        let offending = implicit
            .dims()
            .iter()
            .zip(query.dims())
            .position(|(t, q)| !q.refines(t))
            .unwrap_or(0);
        Err(SkylineError::NotARefinement {
            dimension: schema.nominal_dimension_name(offending),
        })
    }

    /// Checks that `query` is a valid refinement of this template and returns the **effective
    /// per-dimension orders** `R ∪ P(R̃′)` used for dominance.
    ///
    /// For an implicit template this additionally enforces the prefix-refinement property the
    /// paper assumes (the template's listed values must be a prefix of the query's); for a
    /// general template only conflict-freedom is required.
    pub fn effective_orders(
        &self,
        schema: &Schema,
        query: &Preference,
    ) -> Result<Vec<PartialOrder>> {
        query.validate(schema)?;
        self.check_refinement(schema, query)?;
        let query_orders = query.to_partial_orders(schema)?;
        self.orders
            .iter()
            .zip(query_orders)
            .enumerate()
            .map(|(j, (template_order, query_order))| {
                template_order
                    .union(&query_order)
                    .map_err(|_| SkylineError::ConflictingOrders {
                        dimension: schema.nominal_dimension_name(j),
                    })
            })
            .collect()
    }

    /// Approximate heap footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.orders
            .iter()
            .map(PartialOrder::approximate_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::schema::{Dimension, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap()
    }

    #[test]
    fn empty_template_has_empty_orders() {
        let schema = schema();
        let t = Template::empty(&schema);
        assert!(t.is_empty());
        assert_eq!(t.nominal_count(), 2);
        assert!(t.implicit().unwrap().is_none());
    }

    #[test]
    fn template_from_preference_keeps_implicit_form() {
        let schema = schema();
        let pref = Preference::parse(&schema, [("hotel-group", "H < *")]).unwrap();
        let t = Template::from_preference(&schema, pref.clone()).unwrap();
        assert_eq!(t.implicit(), Some(&pref));
        assert!(t.order(0).strictly_preferred(1, 0));
        assert!(t.order(1).is_empty());
        assert!(!t.is_empty());
        assert!(t.approximate_bytes() > 0);
    }

    #[test]
    fn from_partial_orders_validates_cardinalities() {
        let schema = schema();
        let bad = Template::from_partial_orders(&schema, vec![PartialOrder::empty(3)]);
        assert!(bad.is_err());
        let bad = Template::from_partial_orders(
            &schema,
            vec![PartialOrder::empty(3), PartialOrder::empty(5)],
        );
        assert!(bad.is_err());
        let ok = Template::from_partial_orders(
            &schema,
            vec![PartialOrder::empty(3), PartialOrder::empty(3)],
        )
        .unwrap();
        assert!(ok.implicit().is_none());
    }

    #[test]
    fn most_frequent_value_template() {
        let schema = schema();
        let data = Dataset::from_columns(
            schema,
            vec![vec![1.0, 2.0, 3.0, 4.0]],
            vec![vec![2, 2, 2, 0], vec![1, 0, 1, 2]],
        )
        .unwrap();
        let t = Template::most_frequent_value(&data).unwrap();
        // hotel-group: M (id 2) is most frequent; airline: R (id 1).
        assert_eq!(t.implicit().unwrap().dim(0).choices(), &[2]);
        assert_eq!(t.implicit().unwrap().dim(1).choices(), &[1]);
        assert!(t.order(0).strictly_preferred(2, 0));
    }

    #[test]
    fn effective_orders_require_refinement_for_implicit_templates() {
        let schema = schema();
        let template = Template::from_preference(
            &schema,
            Preference::parse(&schema, [("hotel-group", "H < *")]).unwrap(),
        )
        .unwrap();

        // Query that extends the template: OK.
        let good = Preference::parse(
            &schema,
            [("hotel-group", "H < M < *"), ("airline", "G < *")],
        )
        .unwrap();
        let orders = template.effective_orders(&schema, &good).unwrap();
        assert!(orders[0].strictly_preferred(1, 2));
        assert!(orders[0].strictly_preferred(2, 0));
        assert!(orders[1].strictly_preferred(0, 1));

        // Query that contradicts the template: rejected.
        let bad = Preference::parse(&schema, [("hotel-group", "M < *")]).unwrap();
        assert!(matches!(
            template.effective_orders(&schema, &bad),
            Err(SkylineError::NotARefinement { .. })
        ));
    }

    #[test]
    fn effective_orders_with_general_template_only_checks_conflicts() {
        let schema = schema();
        // General (non-implicit) template: T ≺ M on hotel-group.
        let template = Template::from_partial_orders(
            &schema,
            vec![
                PartialOrder::from_pairs(3, [(0, 2)]).unwrap(),
                PartialOrder::empty(3),
            ],
        )
        .unwrap();
        // A query listing H first is fine (no conflict with T ≺ M)…
        let ok = Preference::parse(&schema, [("hotel-group", "H < *")]).unwrap();
        let orders = template.effective_orders(&schema, &ok).unwrap();
        assert!(orders[0].strictly_preferred(0, 2));
        assert!(orders[0].strictly_preferred(1, 0));
        // …but a query putting M above T conflicts.
        let conflict = Preference::parse(&schema, [("hotel-group", "M < T < *")]).unwrap();
        assert!(matches!(
            template.effective_orders(&schema, &conflict),
            Err(SkylineError::ConflictingOrders { .. })
        ));
    }

    #[test]
    fn effective_orders_for_empty_template_accept_any_query() {
        let schema = schema();
        let template = Template::empty(&schema);
        let query = Preference::parse(&schema, [("hotel-group", "M < H < *")]).unwrap();
        let orders = template.effective_orders(&schema, &query).unwrap();
        assert!(orders[0].strictly_preferred(2, 1));
    }
}
