//! Canonical preference keys for result caching.
//!
//! A served skyline system (millions of users, one shared dataset) answers many queries that
//! are *textually* different but *semantically* identical: two implicit preferences induce the
//! same strict partial order — and therefore the same skyline — even when they are written
//! differently. [`CanonicalPreference`] maps every [`Preference`] to a stable, hashable key
//! such that two preferences get the same key **iff** they induce the same per-dimension
//! partial orders over the schema's nominal domains. Result caches key on it.
//!
//! Two normalizations are applied per dimension:
//!
//! * **Full-list truncation.** When the choice list covers the whole domain
//!   (`order == cardinality`), the last listed value is implied: `v1 ≺ … ≺ v_{k-1} ≺ v_k ≺ ∗`
//!   and `v1 ≺ … ≺ v_{k-1} ≺ ∗` are the same total order. The trailing value is dropped
//!   (so on a cardinality-1 domain, listing the single value is equivalent to `∗`).
//! * **Edge-order independence.** Implicit choice lists are already a canonical edge listing
//!   of their induced partial order, so no further work is needed; the derived
//!   [`PartialOrder`] pair sets would compare equal in any listing order.
//!
//! The 64-bit fingerprint is computed with FNV-1a over the normalized lists, so it is stable
//! across processes, platforms and releases — safe to persist or shard on.

use crate::error::Result;
use crate::order::Preference;
use crate::schema::Schema;
use crate::value::ValueId;
use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, byte: u8) {
    *hash ^= u64::from(byte);
    *hash = hash.wrapping_mul(FNV_PRIME);
}

fn fnv1a_u16(hash: &mut u64, v: u16) {
    for byte in v.to_le_bytes() {
        fnv1a(hash, byte);
    }
}

/// A canonical, hashable key for a [`Preference`] over a given [`Schema`].
///
/// Equality means "induces the same per-dimension partial orders"; the precomputed
/// [`CanonicalPreference::fingerprint`] is a stable 64-bit hash of the normalized form
/// (collisions are resolved by the full `Eq` comparison, as in any hash map).
///
/// ```
/// use skyline_core::{CanonicalPreference, Dimension, Preference, Schema};
///
/// let schema = Schema::new(vec![
///     Dimension::numeric("price"),
///     Dimension::nominal_with_labels("hotel-group", ["T", "H"]),
/// ]).unwrap();
/// // On a two-value domain, `T < H < *` and `T < *` are the same partial order.
/// let a = Preference::parse(&schema, [("hotel-group", "T < H < *")]).unwrap();
/// let b = Preference::parse(&schema, [("hotel-group", "T < *")]).unwrap();
/// assert_ne!(a, b);
/// assert_eq!(
///     CanonicalPreference::new(&schema, &a).unwrap(),
///     CanonicalPreference::new(&schema, &b).unwrap(),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalPreference {
    dims: Vec<Vec<ValueId>>,
    fingerprint: u64,
}

impl CanonicalPreference {
    /// Canonicalizes `pref` against `schema` (which supplies the domain cardinalities).
    ///
    /// Fails when the preference does not validate against the schema (wrong arity or a value
    /// outside its domain).
    pub fn new(schema: &Schema, pref: &Preference) -> Result<Self> {
        pref.validate(schema)?;
        let mut dims = Vec::with_capacity(pref.nominal_count());
        for (j, dim_pref) in pref.dims().iter().enumerate() {
            let cardinality = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            let mut choices = dim_pref.choices().to_vec();
            // A list covering the whole domain pins its last value by elimination.
            if choices.len() == cardinality {
                choices.pop();
            }
            dims.push(choices);
        }
        let mut fingerprint = FNV_OFFSET;
        for dim in &dims {
            // Length prefix keeps `[1],[2]` and `[1,2],[]` from colliding structurally.
            fnv1a_u16(&mut fingerprint, dim.len() as u16);
            for &v in dim {
                fnv1a_u16(&mut fingerprint, v);
            }
        }
        Ok(Self { dims, fingerprint })
    }

    /// The normalized per-dimension choice lists.
    pub fn dims(&self) -> &[Vec<ValueId>] {
        &self.dims
    }

    /// The stable 64-bit FNV-1a fingerprint of the normalized form.
    ///
    /// Equal keys always have equal fingerprints; the converse holds up to hash collisions, so
    /// use the fingerprint for sharding and the full key for map lookups.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

impl Hash for CanonicalPreference {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::ImplicitPreference;
    use crate::schema::Dimension;
    use std::collections::HashMap;

    fn schema() -> Schema {
        Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R"]),
        ])
        .unwrap()
    }

    #[test]
    fn equal_preferences_share_a_key() {
        let schema = schema();
        let p = Preference::parse(&schema, [("hotel-group", "M < H < *")]).unwrap();
        let a = CanonicalPreference::new(&schema, &p).unwrap();
        let b = CanonicalPreference::new(&schema, &p.clone()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn full_domain_lists_drop_the_implied_tail() {
        let schema = schema();
        // airline has cardinality 2: `G < R < *` ≡ `G < *`.
        let long = Preference::parse(&schema, [("airline", "G < R < *")]).unwrap();
        let short = Preference::parse(&schema, [("airline", "G < *")]).unwrap();
        assert_ne!(long, short);
        let a = CanonicalPreference::new(&schema, &long).unwrap();
        let b = CanonicalPreference::new(&schema, &short).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.dims()[1], vec![0]);
        // hotel-group has cardinality 3: `M < H < *` keeps both values.
        let three = Preference::parse(&schema, [("hotel-group", "M < H < *")]).unwrap();
        let key = CanonicalPreference::new(&schema, &three).unwrap();
        assert_eq!(key.dims()[0], vec![2, 1]);
    }

    #[test]
    fn different_orders_get_different_keys() {
        let schema = schema();
        let cases = [
            vec![("hotel-group", "T < *")],
            vec![("hotel-group", "H < *")],
            vec![("hotel-group", "T < H < *")],
            vec![("hotel-group", "H < T < *")],
            vec![("hotel-group", "T < *"), ("airline", "G < *")],
            vec![("airline", "G < *")],
            vec![],
        ];
        let keys: Vec<CanonicalPreference> = cases
            .iter()
            .map(|spec| {
                let pref = Preference::parse(&schema, spec.clone()).unwrap();
                CanonicalPreference::new(&schema, &pref).unwrap()
            })
            .collect();
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "cases {i} and {j} must not collide");
                }
            }
        }
    }

    #[test]
    fn length_prefix_prevents_structural_collisions() {
        let schema = schema();
        // `[1] on dim 0, [] on dim 1` vs `[] on dim 0, [1] on dim 1`.
        let a = Preference::from_dims(vec![
            ImplicitPreference::new([1]).unwrap(),
            ImplicitPreference::none(),
        ]);
        let b = Preference::from_dims(vec![
            ImplicitPreference::none(),
            ImplicitPreference::new([1]).unwrap(),
        ]);
        let ka = CanonicalPreference::new(&schema, &a).unwrap();
        let kb = CanonicalPreference::new(&schema, &b).unwrap();
        assert_ne!(ka, kb);
        assert_ne!(ka.fingerprint(), kb.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_across_builds() {
        // Guards the on-disk/cross-process stability contract: this constant may only change
        // with an intentional cache-format bump.
        let schema = schema();
        let pref = Preference::parse(
            &schema,
            [("hotel-group", "M < H < *"), ("airline", "R < *")],
        )
        .unwrap();
        let key = CanonicalPreference::new(&schema, &pref).unwrap();
        let mut expected = FNV_OFFSET;
        fnv1a_u16(&mut expected, 2);
        fnv1a_u16(&mut expected, 2);
        fnv1a_u16(&mut expected, 1);
        fnv1a_u16(&mut expected, 1);
        fnv1a_u16(&mut expected, 1);
        assert_eq!(key.fingerprint(), expected);
    }

    #[test]
    fn invalid_preferences_are_rejected() {
        let schema = schema();
        let wrong_arity = Preference::none(1);
        assert!(CanonicalPreference::new(&schema, &wrong_arity).is_err());
        let out_of_domain = Preference::none(2).with_dim(0, ImplicitPreference::new([9]).unwrap());
        assert!(CanonicalPreference::new(&schema, &out_of_domain).is_err());
    }

    #[test]
    fn usable_as_a_hash_map_key() {
        let schema = schema();
        let mut map: HashMap<CanonicalPreference, usize> = HashMap::new();
        let a = Preference::parse(&schema, [("airline", "G < R < *")]).unwrap();
        let b = Preference::parse(&schema, [("airline", "G < *")]).unwrap();
        map.insert(CanonicalPreference::new(&schema, &a).unwrap(), 1);
        // The equivalent preference overwrites the same slot.
        map.insert(CanonicalPreference::new(&schema, &b).unwrap(), 2);
        assert_eq!(map.len(), 1);
        assert_eq!(map[&CanonicalPreference::new(&schema, &a).unwrap()], 2);
    }
}
