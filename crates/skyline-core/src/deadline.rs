//! Per-request deadlines and cooperative cancellation.
//!
//! A serving layer that promises tail-latency bounds needs every expensive loop to be
//! interruptible: a query that will blow its budget should stop *mid-scan* and release its
//! worker, not run to completion and then be discarded. [`Deadline`] is the token the
//! service threads through batch execution, the sharded scatter and down into the
//! elimination scans, which poll it at **block granularity** (once per
//! [`DEADLINE_CHECK_INTERVAL`] candidates — one packed 64-lane window block), so the cost of
//! the check is amortized over thousands of dominance tests.
//!
//! Cancellation is *cooperative*: an expired deadline makes the next poll return
//! [`SkylineError::DeadlineExceeded`], the scan unwinds normally via `?`, and every
//! invariant (caches, single-flight latches, locks) is released on the ordinary error path —
//! nothing is poisoned, nothing partial is published.

use crate::error::{Result, SkylineError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scan loops poll the deadline every this many candidates — the packed kernel's 64-lane
/// window block, so one wall-clock read is amortized over a full block of dominance tests.
pub const DEADLINE_CHECK_INTERVAL: usize = 64;

/// A shared cancellation flag: cloning hands the same flag to another thread, and
/// [`CancelToken::cancel`] makes every [`Deadline`] carrying a clone report expiry on its
/// next poll. Useful for "user closed the connection" style aborts that have no time bound.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token: every deadline carrying a clone of it is now expired.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called (on this clone or any other).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A per-request time budget plus optional cancel token, checked cooperatively.
///
/// `Deadline::none()` (the default) never expires and its polls compile down to two branch
/// checks — the unbounded path costs nothing measurable. Deadlines are `Clone` and cheap to
/// pass by reference through every layer of a query.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    at: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl Deadline {
    /// No time bound and no cancel token: polls always pass.
    pub fn none() -> Self {
        Self::default()
    }

    /// Expires `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Self {
            at: Some(Instant::now() + budget),
            cancel: None,
        }
    }

    /// Expires at `at`.
    pub fn at(at: Instant) -> Self {
        Self {
            at: Some(at),
            cancel: None,
        }
    }

    /// Attaches a cancel token: the deadline also expires when the token fires.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The sooner of this deadline and `budget` from now, sharing the cancel token. The
    /// sharded streaming gather uses this to cap how long one laggard shard's pull may run
    /// without loosening (or losing the cancellation of) the request's own deadline.
    pub fn tightened(&self, budget: Duration) -> Self {
        let cap = Instant::now() + budget;
        Self {
            at: Some(self.at.map_or(cap, |at| at.min(cap))),
            cancel: self.cancel.clone(),
        }
    }

    /// Whether this deadline can ever expire (false for [`Deadline::none`]).
    pub fn is_bounded(&self) -> bool {
        self.at.is_some() || self.cancel.is_some()
    }

    /// Polls the deadline: true once the time budget is spent or the cancel token fired.
    #[inline]
    pub fn expired(&self) -> bool {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return true;
            }
        }
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// Polls the deadline as a `Result`: [`SkylineError::DeadlineExceeded`] once expired.
    /// This is the check the scan loops call at block granularity.
    #[inline]
    pub fn check(&self) -> Result<()> {
        if self.expired() {
            Err(SkylineError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }

    /// Time left before expiry: `None` for an unbounded deadline, `Some(ZERO)` once expired
    /// (also when only the cancel token fired). The single-flight latch uses this to bound
    /// how long a follower may wait for its leader.
    pub fn remaining(&self) -> Option<Duration> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Some(Duration::ZERO);
            }
        }
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_bounded());
        assert!(!d.expired());
        assert!(d.check().is_ok());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn elapsed_budget_expires() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.is_bounded());
        assert!(d.expired());
        assert_eq!(d.check(), Err(SkylineError::DeadlineExceeded));
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_passes() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.check().is_ok());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancel_token_fires_across_clones() {
        let token = CancelToken::new();
        let d = Deadline::within(Duration::from_secs(3600)).with_cancel(token.clone());
        let d2 = Deadline::none().with_cancel(token.clone());
        assert!(!d.expired());
        assert!(!d2.expired());
        token.cancel();
        assert!(token.is_cancelled());
        assert!(d.expired());
        assert!(
            d2.expired(),
            "a tokened deadline without a time bound still cancels"
        );
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn explicit_instant_deadline() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.expired());
        let d = Deadline::at(Instant::now() + Duration::from_secs(60));
        assert!(!d.expired());
    }
}
