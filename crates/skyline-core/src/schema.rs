//! Dataset schemas: an ordered list of numeric and nominal dimensions.

use crate::error::{Result, SkylineError};
use crate::value::NominalDomain;

/// Kind of one dimension (the paper uses "attribute" and "dimension" interchangeably).
#[derive(Debug, Clone, PartialEq)]
pub enum DimensionKind {
    /// Totally-ordered numeric attribute. Following the paper's convention, **smaller is
    /// better** (price, number of stops…). Attributes where larger is better (hotel class)
    /// are stored negated by the caller or the dataset builder helper.
    Numeric,
    /// Nominal attribute: a finite domain of labelled values with *no* predefined order.
    /// Users impose an order per query through an implicit preference.
    Nominal(NominalDomain),
}

impl DimensionKind {
    /// True for [`DimensionKind::Numeric`].
    pub fn is_numeric(&self) -> bool {
        matches!(self, DimensionKind::Numeric)
    }

    /// True for [`DimensionKind::Nominal`].
    pub fn is_nominal(&self) -> bool {
        matches!(self, DimensionKind::Nominal(_))
    }
}

/// One dimension of a schema: a name plus its kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Dimension {
    name: String,
    kind: DimensionKind,
}

impl Dimension {
    /// Creates a numeric (smaller-is-better) dimension.
    pub fn numeric(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: DimensionKind::Numeric,
        }
    }

    /// Creates a nominal dimension with the given value domain.
    pub fn nominal(name: impl Into<String>, domain: NominalDomain) -> Self {
        Self {
            name: name.into(),
            kind: DimensionKind::Nominal(domain),
        }
    }

    /// Creates a nominal dimension whose domain is built from the given labels.
    pub fn nominal_with_labels<I, S>(name: impl Into<String>, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::nominal(name, NominalDomain::from_labels(labels))
    }

    /// Dimension name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimension kind.
    pub fn kind(&self) -> &DimensionKind {
        &self.kind
    }

    /// The nominal domain, if this dimension is nominal.
    pub fn domain(&self) -> Option<&NominalDomain> {
        match &self.kind {
            DimensionKind::Nominal(domain) => Some(domain),
            DimensionKind::Numeric => None,
        }
    }

    /// Mutable access to the nominal domain (used by the dataset builder to intern new labels).
    pub(crate) fn domain_mut(&mut self) -> Option<&mut NominalDomain> {
        match &mut self.kind {
            DimensionKind::Nominal(domain) => Some(domain),
            DimensionKind::Numeric => None,
        }
    }
}

/// An ordered collection of dimensions describing a dataset.
///
/// The schema keeps two derived index lists so that hot code can iterate over "all numeric
/// dimensions" or "all nominal dimensions" without re-scanning kinds:
///
/// * `numeric_dims[j]` is the schema index of the `j`-th numeric dimension;
/// * `nominal_dims[j]` is the schema index of the `j`-th nominal dimension.
///
/// Preferences and dominance contexts address nominal dimensions by their *nominal index*
/// `j` (0-based among nominal dimensions), matching the paper's `D1 … Dm'` numbering of
/// nominal attributes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    dims: Vec<Dimension>,
    numeric_dims: Vec<usize>,
    nominal_dims: Vec<usize>,
}

impl Schema {
    /// Builds a schema from a list of dimensions, rejecting duplicate names.
    pub fn new(dims: Vec<Dimension>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for dim in &dims {
            if !seen.insert(dim.name().to_string()) {
                return Err(SkylineError::DuplicateDimension(dim.name().to_string()));
            }
        }
        let mut schema = Schema {
            dims,
            numeric_dims: Vec::new(),
            nominal_dims: Vec::new(),
        };
        schema.rebuild_kind_indexes();
        Ok(schema)
    }

    fn rebuild_kind_indexes(&mut self) {
        self.numeric_dims.clear();
        self.nominal_dims.clear();
        for (i, dim) in self.dims.iter().enumerate() {
            match dim.kind() {
                DimensionKind::Numeric => self.numeric_dims.push(i),
                DimensionKind::Nominal(_) => self.nominal_dims.push(i),
            }
        }
    }

    /// Total number of dimensions (`m` in the paper).
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Number of numeric dimensions.
    pub fn numeric_count(&self) -> usize {
        self.numeric_dims.len()
    }

    /// Number of nominal dimensions (`m'` in the paper).
    pub fn nominal_count(&self) -> usize {
        self.nominal_dims.len()
    }

    /// All dimensions, in schema order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dims
    }

    /// Dimension at schema index `i`.
    pub fn dimension(&self, i: usize) -> Option<&Dimension> {
        self.dims.get(i)
    }

    /// Schema index of the dimension called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d.name() == name)
    }

    /// Schema indexes of the numeric dimensions.
    pub fn numeric_dims(&self) -> &[usize] {
        &self.numeric_dims
    }

    /// Schema indexes of the nominal dimensions.
    pub fn nominal_dims(&self) -> &[usize] {
        &self.nominal_dims
    }

    /// Maps a schema index to its nominal index (position among nominal dimensions).
    pub fn nominal_index_of(&self, schema_index: usize) -> Option<usize> {
        self.nominal_dims.iter().position(|&i| i == schema_index)
    }

    /// Maps a *nominal index* (0-based among nominal dimensions) back to the schema index.
    pub fn schema_index_of_nominal(&self, nominal_index: usize) -> Option<usize> {
        self.nominal_dims.get(nominal_index).copied()
    }

    /// Display name of the `j`-th nominal dimension for error messages (empty when the index
    /// is out of range). The one place error sites resolve "nominal index → name".
    pub fn nominal_dimension_name(&self, nominal_index: usize) -> String {
        self.schema_index_of_nominal(nominal_index)
            .and_then(|i| self.dimension(i))
            .map(|d| d.name().to_string())
            .unwrap_or_default()
    }

    /// The nominal index of the dimension called `name`, if it exists and is nominal.
    pub fn nominal_index_by_name(&self, name: &str) -> Result<usize> {
        let schema_index = self
            .index_of(name)
            .ok_or_else(|| SkylineError::UnknownDimension(name.to_string()))?;
        self.nominal_index_of(schema_index)
            .ok_or_else(|| SkylineError::KindMismatch {
                dimension: name.to_string(),
                detail: "expected a nominal dimension".to_string(),
            })
    }

    /// Domain of the `j`-th nominal dimension.
    pub fn nominal_domain(&self, nominal_index: usize) -> Option<&NominalDomain> {
        let schema_index = self.schema_index_of_nominal(nominal_index)?;
        self.dims[schema_index].domain()
    }

    /// Cardinalities of all nominal dimensions, in nominal-index order.
    pub fn nominal_cardinalities(&self) -> Vec<usize> {
        self.nominal_dims
            .iter()
            .map(|&i| self.dims[i].domain().map_or(0, NominalDomain::cardinality))
            .collect()
    }

    /// Mutable access to a dimension (used by the dataset builder to intern labels).
    pub(crate) fn dimension_mut(&mut self, i: usize) -> Option<&mut Dimension> {
        self.dims.get_mut(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vacation_schema() -> Schema {
        Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("hotel-class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap()
    }

    #[test]
    fn counts_and_indexes() {
        let schema = vacation_schema();
        assert_eq!(schema.arity(), 4);
        assert_eq!(schema.numeric_count(), 2);
        assert_eq!(schema.nominal_count(), 2);
        assert_eq!(schema.numeric_dims(), &[0, 1]);
        assert_eq!(schema.nominal_dims(), &[2, 3]);
    }

    #[test]
    fn nominal_index_mapping_roundtrips() {
        let schema = vacation_schema();
        assert_eq!(schema.nominal_index_of(2), Some(0));
        assert_eq!(schema.nominal_index_of(3), Some(1));
        assert_eq!(schema.nominal_index_of(0), None);
        assert_eq!(schema.schema_index_of_nominal(1), Some(3));
        assert_eq!(schema.schema_index_of_nominal(2), None);
    }

    #[test]
    fn nominal_index_by_name() {
        let schema = vacation_schema();
        assert_eq!(schema.nominal_index_by_name("airline").unwrap(), 1);
        assert!(matches!(
            schema.nominal_index_by_name("price"),
            Err(SkylineError::KindMismatch { .. })
        ));
        assert!(matches!(
            schema.nominal_index_by_name("missing"),
            Err(SkylineError::UnknownDimension(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![Dimension::numeric("a"), Dimension::numeric("a")]).unwrap_err();
        assert_eq!(err, SkylineError::DuplicateDimension("a".into()));
    }

    #[test]
    fn cardinalities_follow_nominal_order() {
        let schema = vacation_schema();
        assert_eq!(schema.nominal_cardinalities(), vec![3, 3]);
        assert_eq!(schema.nominal_domain(0).unwrap().label(0), Some("T"));
        assert!(schema.nominal_domain(5).is_none());
    }

    #[test]
    fn dimension_kind_helpers() {
        assert!(DimensionKind::Numeric.is_numeric());
        assert!(!DimensionKind::Numeric.is_nominal());
        let nominal = DimensionKind::Nominal(NominalDomain::anonymous(2));
        assert!(nominal.is_nominal());
    }

    #[test]
    fn index_of_by_name() {
        let schema = vacation_schema();
        assert_eq!(schema.index_of("hotel-group"), Some(2));
        assert_eq!(schema.index_of("nope"), None);
    }
}
