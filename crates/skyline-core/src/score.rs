//! The monotone preference (scoring) function used by the SFS family (Section 4.2).
//!
//! Every value `v` of a dimension gets a rank `r(v)`; the score of a point is
//! `f(p) = Σ_i r(p.D_i)`. The requirement is monotonicity: if `p` dominates `q` under the
//! preference then `f(p) < f(q)`, so that sorting by `f` guarantees no point is dominated by a
//! point that sorts after it.
//!
//! * numeric dimensions: `r(v) = v` (smaller is better);
//! * nominal dimensions: listed values get their 1-based position in the implicit preference,
//!   unlisted values get the dimension's cardinality `cᵢ`.

use crate::dataset::Dataset;
use crate::error::Result;
use crate::order::Preference;
use crate::schema::Schema;
use crate::value::{PointId, ValueId};

/// A materialized ranking of every nominal value under one preference, plus the machinery to
/// score points and whole datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreFn {
    /// `nominal_ranks[j][v]` is `r(v)` for value `v` of nominal dimension `j`.
    nominal_ranks: Vec<Vec<f64>>,
}

impl ScoreFn {
    /// Builds the scoring function for `preference` over `schema`.
    pub fn for_preference(schema: &Schema, preference: &Preference) -> Result<Self> {
        preference.validate(schema)?;
        let mut nominal_ranks = Vec::with_capacity(schema.nominal_count());
        for j in 0..schema.nominal_count() {
            let cardinality = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            let pref = preference.dim(j);
            let ranks = (0..cardinality as ValueId)
                .map(|v| pref.rank(v, cardinality) as f64)
                .collect();
            nominal_ranks.push(ranks);
        }
        Ok(Self { nominal_ranks })
    }

    /// Builds the default scoring function with no nominal preference: every value of dimension
    /// `j` gets rank `cⱼ`, so nominal dimensions contribute a constant and sorting is purely by
    /// the numeric dimensions. This is the base ordering Adaptive SFS materializes.
    pub fn default_ranking(schema: &Schema) -> Self {
        let nominal_ranks = (0..schema.nominal_count())
            .map(|j| {
                let cardinality = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
                vec![cardinality as f64; cardinality]
            })
            .collect();
        Self { nominal_ranks }
    }

    /// Rank assigned to value `v` of nominal dimension `j`.
    pub fn nominal_rank(&self, nominal_index: usize, v: ValueId) -> f64 {
        self.nominal_ranks[nominal_index][v as usize]
    }

    /// Score of point `p`: sum of its numeric values plus the ranks of its nominal values.
    pub fn score(&self, data: &Dataset, p: PointId) -> f64 {
        let schema = data.schema();
        let mut total = 0.0;
        for j in 0..schema.numeric_count() {
            total += data.numeric(p, j);
        }
        for (j, ranks) in self.nominal_ranks.iter().enumerate() {
            total += ranks[data.nominal(p, j) as usize];
        }
        total
    }

    /// Scores every point of the dataset (index = point id).
    pub fn score_all(&self, data: &Dataset) -> Vec<f64> {
        data.point_ids().map(|p| self.score(data, p)).collect()
    }

    /// Scores the given subset of points, returning `(point, score)` pairs.
    pub fn score_subset(&self, data: &Dataset, points: &[PointId]) -> Vec<(PointId, f64)> {
        points.iter().map(|&p| (p, self.score(data, p))).collect()
    }

    /// Returns the point ids of `points` sorted by ascending score (ties by point id, so the
    /// order is deterministic).
    pub fn sort_by_score(&self, data: &Dataset, points: &[PointId]) -> Vec<PointId> {
        let mut scored = self.score_subset(data, points);
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.into_iter().map(|(p, _)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::dominance::DominanceContext;
    use crate::order::{ImplicitPreference, Template};
    use crate::schema::{Dimension, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::nominal_with_labels("group", ["T", "H", "M"]),
        ])
        .unwrap()
    }

    fn data() -> Dataset {
        Dataset::from_columns(
            schema(),
            vec![vec![10.0, 20.0, 5.0, 5.0]],
            vec![vec![0, 1, 2, 0]],
        )
        .unwrap()
    }

    #[test]
    fn ranks_follow_preference_positions() {
        let schema = schema();
        let pref = Preference::from_dims(vec![ImplicitPreference::new([2, 1]).unwrap()]);
        let f = ScoreFn::for_preference(&schema, &pref).unwrap();
        assert_eq!(f.nominal_rank(0, 2), 1.0);
        assert_eq!(f.nominal_rank(0, 1), 2.0);
        assert_eq!(f.nominal_rank(0, 0), 3.0);
    }

    #[test]
    fn default_ranking_is_constant_per_dimension() {
        let f = ScoreFn::default_ranking(&schema());
        assert_eq!(f.nominal_rank(0, 0), 3.0);
        assert_eq!(f.nominal_rank(0, 2), 3.0);
    }

    #[test]
    fn score_sums_numeric_and_ranks() {
        let data = data();
        let pref = Preference::from_dims(vec![ImplicitPreference::new([2, 1]).unwrap()]);
        let f = ScoreFn::for_preference(data.schema(), &pref).unwrap();
        // point 0: price 10, group T (rank 3) => 13
        assert_eq!(f.score(&data, 0), 13.0);
        // point 2: price 5, group M (rank 1) => 6
        assert_eq!(f.score(&data, 2), 6.0);
        assert_eq!(f.score_all(&data), vec![13.0, 22.0, 6.0, 8.0]);
    }

    #[test]
    fn sort_by_score_is_deterministic() {
        let data = data();
        let f = ScoreFn::default_ranking(data.schema());
        let order = f.sort_by_score(&data, &[0, 1, 2, 3]);
        // points 2 and 3 tie at 5 + 3 = 8; tie broken by id.
        assert_eq!(order, vec![2, 3, 0, 1]);
        let subset = f.score_subset(&data, &[1, 0]);
        assert_eq!(subset, vec![(1, 23.0), (0, 13.0)]);
    }

    #[test]
    fn monotone_with_respect_to_dominance() {
        // For every pair (p, q) of a small dataset and a fixed preference: if p dominates q
        // then f(p) < f(q). This is the property SFS relies on.
        let data = data();
        let template = Template::empty(data.schema());
        let pref = Preference::from_dims(vec![ImplicitPreference::new([0]).unwrap()]);
        let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
        let f = ScoreFn::for_preference(data.schema(), &pref).unwrap();
        for p in data.point_ids() {
            for q in data.point_ids() {
                if ctx.dominates(p, q) {
                    assert!(
                        f.score(&data, p) < f.score(&data, q),
                        "monotonicity violated for ({p}, {q})"
                    );
                }
            }
        }
    }

    #[test]
    fn for_preference_validates() {
        let schema = schema();
        let pref = Preference::from_dims(vec![ImplicitPreference::new([9]).unwrap()]);
        assert!(ScoreFn::for_preference(&schema, &pref).is_err());
        let pref = Preference::none(3);
        assert!(ScoreFn::for_preference(&schema, &pref).is_err());
    }
}
