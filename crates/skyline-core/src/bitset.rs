//! A compact fixed-capacity bit set.
//!
//! Used in two places that the paper calls out explicitly:
//!
//! * the transitive closure of per-dimension partial orders (`closure[u]` = set of values that
//!   `u` is strictly preferred to), where cardinalities are small (≤ a few dozen);
//! * the bitmap implementation of IPO-tree nodes (§3.2 *Implementation*), where each node keeps
//!   a bitmap over the template skyline and queries are answered with bitwise AND/OR.

/// Fixed-capacity bit set backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold bits `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set with every bit in `0..capacity` set.
    pub fn full(capacity: usize) -> Self {
        let mut set = Self::new(capacity);
        for word in &mut set.words {
            *word = u64::MAX;
        }
        set.trim_tail();
        set
    }

    /// Creates a set from an iterator of bit indexes.
    pub fn from_indexes<I: IntoIterator<Item = usize>>(capacity: usize, indexes: I) -> Self {
        let mut set = Self::new(capacity);
        for i in indexes {
            set.insert(i);
        }
        set
    }

    fn trim_tail(&mut self) {
        let extra = self.words.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Number of bits the set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets bit `i`. Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`. Panics if `i >= capacity`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// True when bit `i` is set. Out-of-range indexes report `false`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        for word in &mut self.words {
            *word = 0;
        }
    }

    /// In-place union: `self |= other`. Capacities must match.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection: `self &= other`. Capacities must match.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self &= !other`. Capacities must match.
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns a new set equal to `self ∪ other`.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns a new set equal to `self ∩ other`.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns a new set equal to `self \ other`.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// True when `self` is a subset of `other` (every set bit of `self` is set in `other`).
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// True when the two sets share at least one set bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over the indexes of set bits, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Collects the set bits into a `Vec<u32>` (convenient for point-id sets).
    pub fn to_ids(&self) -> Vec<u32> {
        self.iter().map(|i| i as u32).collect()
    }

    /// Approximate heap footprint in bytes (used for storage accounting in the benches).
    pub fn approximate_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is one more than the largest index in the iterator.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indexes: Vec<usize> = iter.into_iter().collect();
        let capacity = indexes.iter().max().map_or(0, |&m| m + 1);
        Self::from_indexes(capacity, indexes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(!s.contains(500));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indexes(100, [1, 2, 3, 64]);
        let b = BitSet::from_indexes(100, [2, 3, 4, 99]);
        assert_eq!(a.union(&b).to_ids(), vec![1, 2, 3, 4, 64, 99]);
        assert_eq!(a.intersection(&b).to_ids(), vec![2, 3]);
        assert_eq!(a.difference(&b).to_ids(), vec![1, 64]);
        assert!(a.intersects(&b));
        assert!(!a.difference(&b).intersects(&b));
    }

    #[test]
    fn subset_checks() {
        let a = BitSet::from_indexes(80, [5, 70]);
        let b = BitSet::from_indexes(80, [5, 6, 70]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(BitSet::new(80).is_subset_of(&a));
    }

    #[test]
    fn iter_in_order() {
        let s = BitSet::from_indexes(200, [199, 0, 63, 64, 127, 128]);
        let ids: Vec<usize> = s.iter().collect();
        assert_eq!(ids, vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn clear_and_empty() {
        let mut s = BitSet::from_indexes(10, [1, 2]);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [3usize, 10, 7].into_iter().collect();
        assert_eq!(s.capacity(), 11);
        assert_eq!(s.to_ids(), vec![3, 7, 10]);
        let empty: BitSet = std::iter::empty::<usize>().collect();
        assert_eq!(empty.capacity(), 0);
    }

    #[test]
    fn approximate_bytes_counts_words() {
        assert_eq!(BitSet::new(0).approximate_bytes(), 0);
        assert_eq!(BitSet::new(1).approximate_bytes(), 8);
        assert_eq!(BitSet::new(65).approximate_bytes(), 16);
    }
}
