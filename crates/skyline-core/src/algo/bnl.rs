//! Block-Nested-Loop (BNL) skyline computation.
//!
//! The classic algorithm of Börzsönyi, Kossmann and Stocker: stream the points through a
//! window of current skyline candidates. Each incoming point is dropped if some window point
//! dominates it; otherwise it evicts every window point it dominates and joins the window.
//!
//! The original algorithm pages the window to disk when memory is short; this in-memory
//! variant keeps the whole window resident, which is the setting of the paper's experiments
//! (the data fits in RAM). BNL makes no assumption about the order of the input, so it works
//! for any [`DominanceContext`], and it is the oracle the property-based tests compare every
//! other algorithm against.

use super::sink::ResultSink;
use super::AlgoStats;
use crate::dominance::{Dominance, DominanceContext};
use crate::value::PointId;

/// Computes the skyline of the whole dataset bound to `ctx`.
pub fn skyline(ctx: &DominanceContext<'_>) -> Vec<PointId> {
    let points: Vec<PointId> = ctx.dataset().point_ids().collect();
    skyline_of(ctx, &points)
}

/// Computes the skyline of an arbitrary subset of points under any [`Dominance`]
/// implementation (the reference context or the compiled kernel).
///
/// Dispatches through [`Dominance::bnl_skyline`], so the compiled kernel runs its
/// bit-parallel packed window here; the stats variant below keeps the generic reference
/// loop (its per-test counters are meaningless for a mask-algebra walk).
pub fn skyline_of<D: Dominance + ?Sized>(ctx: &D, points: &[PointId]) -> Vec<PointId> {
    ctx.bnl_skyline(points)
}

/// Drives a [`ResultSink`] with the skyline of `points`.
///
/// BNL is **not** progressive — a window member can still be evicted by a later candidate —
/// so members are confirmed (and emitted, in ascending id order) only once the scan has
/// finished. Streaming callers that need true incremental emission should use the SFS scan
/// ([`crate::algo::sfs::scan_presorted_sink`]); this adapter exists so every elimination
/// algorithm in the workspace speaks the same sink interface.
pub fn skyline_of_sink<D: Dominance + ?Sized, S: ResultSink>(
    ctx: &D,
    points: &[PointId],
    sink: &mut S,
) {
    for p in ctx.bnl_skyline(points) {
        if !sink.emit(p) {
            break;
        }
    }
}

/// Computes the skyline of a subset and reports work counters.
pub fn skyline_of_with_stats<D: Dominance + ?Sized>(
    ctx: &D,
    points: &[PointId],
) -> (Vec<PointId>, AlgoStats) {
    let mut window: Vec<PointId> = Vec::new();
    let mut stats = AlgoStats::default();
    for &p in points {
        stats.points_scanned += 1;
        let mut dominated = false;
        let mut evict = Vec::new();
        for (i, &w) in window.iter().enumerate() {
            stats.dominance_tests += 1;
            if ctx.dominates(w, p) {
                dominated = true;
                break;
            }
            stats.dominance_tests += 1;
            if ctx.dominates(p, w) {
                evict.push(i);
            }
        }
        if dominated {
            continue;
        }
        // Remove evicted window entries from the back so indexes stay valid.
        for &i in evict.iter().rev() {
            window.swap_remove(i);
        }
        window.push(p);
    }
    window.sort_unstable();
    stats.skyline_size = window.len();
    (window, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::verify_skyline;
    use crate::dataset::{Dataset, DatasetBuilder, RowValue};
    use crate::order::{Preference, Template};
    use crate::schema::{Dimension, Schema};

    fn vacation_data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group) in [
            (1600.0, 4.0, "T"),
            (2400.0, 1.0, "T"),
            (3000.0, 5.0, "H"),
            (3600.0, 4.0, "H"),
            (2400.0, 2.0, "M"),
            (3000.0, 3.0, "M"),
        ] {
            b.push_row([RowValue::Num(price), RowValue::Num(-class), group.into()])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn table2_bob_no_preference() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        // Bob has no special preference: skyline is {a, c, e, f} = ids {0, 2, 4, 5}.
        assert_eq!(skyline(&ctx), vec![0, 2, 4, 5]);
    }

    #[test]
    fn table2_named_customers() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let cases = [
            ("T < M < *", vec![0, 2]),    // Alice
            ("H < M < *", vec![0, 2, 4]), // Chris
            ("H < M < T", vec![0, 2, 4]), // David
            ("H < T < *", vec![0, 2]),    // Emily
            ("M < *", vec![0, 2, 4, 5]),  // Fred
        ];
        for (text, expected) in cases {
            let pref = Preference::parse(&schema, [("hotel-group", text)]).unwrap();
            let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
            assert_eq!(skyline(&ctx), expected, "preference {text}");
        }
    }

    #[test]
    fn skyline_of_subset_only_considers_subset() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        // Within {b, d} alone nothing dominates anything (different groups).
        assert_eq!(skyline_of(&ctx, &[1, 3]), vec![1, 3]);
        // Within {a, b} a dominates b.
        assert_eq!(skyline_of(&ctx, &[0, 1]), vec![0]);
        assert!(skyline_of(&ctx, &[]).is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let (sky, stats) = skyline_of_with_stats(&ctx, &data.point_ids().collect::<Vec<_>>());
        assert_eq!(stats.skyline_size, sky.len());
        assert_eq!(stats.points_scanned, 6);
        assert!(stats.dominance_tests > 0);
        assert!(verify_skyline(
            &ctx,
            &data.point_ids().collect::<Vec<_>>(),
            &sky
        ));
    }

    #[test]
    fn sink_adapter_confirms_the_whole_skyline() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let all: Vec<PointId> = data.point_ids().collect();
        let mut emitted = Vec::new();
        skyline_of_sink(&ctx, &all, &mut |p: PointId| {
            emitted.push(p);
            true
        });
        assert_eq!(emitted, skyline_of(&ctx, &all));
        // Early stop truncates the emission, not the computation's correctness.
        let mut first = Vec::new();
        skyline_of_sink(&ctx, &all, &mut |p: PointId| {
            first.push(p);
            false
        });
        assert_eq!(first, emitted[..1]);
    }

    #[test]
    fn duplicates_keep_one_representative_each() {
        // Two identical rows: neither dominates the other, both stay in the skyline.
        let schema = Schema::new(vec![Dimension::numeric("x")]).unwrap();
        let data = Dataset::from_columns(schema, vec![vec![1.0, 1.0, 2.0]], vec![]).unwrap();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        assert_eq!(skyline(&ctx), vec![0, 1]);
    }
}
