//! Full-dataset skyline algorithms.
//!
//! These are the reference algorithms the paper builds on and compares against:
//!
//! * [`bnl`] — Block-Nested-Loop (Börzsönyi et al. \[1\]), the simplest correct algorithm;
//!   used in this workspace mainly as a test oracle.
//! * [`sfs`] — Sort-First Skyline (Chomicki et al. \[7\]): presort by a monotone preference
//!   function, then a single elimination scan. Run over the full dataset with the query's
//!   ranking it is exactly the paper's **SFS-D** baseline.
//! * [`merge`] — the divide-and-conquer merge as a first-class operator: combine
//!   per-fragment skylines (chunks of one block, or shards with separate id spaces) into the
//!   skyline of the union.
//!
//! Both are generic over the [`crate::dominance::Dominance`] trait, so the same elimination
//! loops run against the reference [`crate::DominanceContext`] or the compiled
//! [`crate::kernel::CompiledRelation`] kernel, for any combination of numeric dimensions and
//! nominal dimensions with partial-order preferences.

pub mod bnl;
pub mod merge;
pub mod sfs;
pub mod sink;

pub use merge::{merge_skylines, ProgressiveMerger, SkylineMerger};
pub use sink::{CollectSink, ResultSink};

use crate::dominance::Dominance;
use crate::value::PointId;

/// Counters describing the work done by a skyline computation. Useful for the benchmark
/// harness (the paper reports wall-clock times; dominance-test counts are a machine-neutral
/// proxy that tracks the same trends).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlgoStats {
    /// Number of pairwise dominance tests performed.
    pub dominance_tests: u64,
    /// Number of points examined.
    pub points_scanned: u64,
    /// Size of the produced skyline.
    pub skyline_size: usize,
}

/// Verifies that `skyline` is exactly the skyline of `points` under `ctx`.
///
/// This is an O(|points|·|skyline|) brute-force check intended for tests and debug assertions,
/// not for production use.
pub fn verify_skyline<D: Dominance + ?Sized>(
    ctx: &D,
    points: &[PointId],
    skyline: &[PointId],
) -> bool {
    use std::collections::HashSet;
    let skyline_set: HashSet<PointId> = skyline.iter().copied().collect();
    // Every skyline member must be non-dominated; every non-member must be dominated by someone.
    for &p in points {
        let dominated = points.iter().any(|&q| ctx.dominates(q, p));
        if skyline_set.contains(&p) && dominated {
            return false;
        }
        if !skyline_set.contains(&p) && !dominated {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::dominance::DominanceContext;
    use crate::order::Template;
    use crate::schema::{Dimension, Schema};

    #[test]
    fn verify_skyline_accepts_correct_and_rejects_wrong() {
        let schema = Schema::new(vec![Dimension::numeric("x"), Dimension::numeric("y")]).unwrap();
        let data = Dataset::from_columns(
            schema,
            vec![vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]],
            vec![],
        )
        .unwrap();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let all: Vec<u32> = (0..3).collect();
        assert!(verify_skyline(&ctx, &all, &[0, 1, 2]));
        assert!(!verify_skyline(&ctx, &all, &[0, 1]));

        let dominated = Dataset::from_columns(
            data.schema().clone(),
            vec![vec![1.0, 2.0], vec![1.0, 2.0]],
            vec![],
        )
        .unwrap();
        let t2 = Template::empty(dominated.schema());
        let ctx2 = DominanceContext::for_template(&dominated, &t2).unwrap();
        assert!(verify_skyline(&ctx2, &[0, 1], &[0]));
        assert!(!verify_skyline(&ctx2, &[0, 1], &[0, 1]));
    }

    #[test]
    fn algo_stats_default_is_zero() {
        let stats = AlgoStats::default();
        assert_eq!(stats.dominance_tests, 0);
        assert_eq!(stats.points_scanned, 0);
        assert_eq!(stats.skyline_size, 0);
    }
}
