//! Result sinks: the push half of the streaming result path.
//!
//! The paper's elimination scans are *progressive*: under a monotone score order every point
//! the SFS scan accepts is a final skyline member the moment it is accepted. A
//! [`ResultSink`] receives members exactly at that moment, so serving layers can forward the
//! confirmed prefix of an answer while the tail of the scan is still running. The batch
//! `Vec`-returning APIs are the trivial special case — a [`CollectSink`] that appends every
//! member — so the whole-result path sits *on top of* the streaming one, not beside it.
//!
//! Emission order is the scan order: for SFS-family scans that is ascending query score,
//! which is what the cross-shard progressive merge relies on. BNL is **not** progressive
//! (window members can still be evicted by later candidates), so its sink adapter confirms
//! members only once the scan has finished.

use crate::value::PointId;

/// Receives confirmed skyline members as an elimination scan accepts them.
///
/// `emit` returns `true` to continue the scan and `false` to stop early — the consumer has
/// seen enough (a top-k prefix, a closed connection). Stopping early is not an error: the
/// scan returns normally with the work done so far.
pub trait ResultSink {
    /// Called once per confirmed member, in scan (score) order.
    fn emit(&mut self, p: PointId) -> bool;
}

/// Every `FnMut(PointId) -> bool` closure is a sink, so ad-hoc consumers need no wrapper.
impl<F: FnMut(PointId) -> bool> ResultSink for F {
    #[inline]
    fn emit(&mut self, p: PointId) -> bool {
        self(p)
    }
}

/// The collect-all sink backing the batch APIs: appends every member, never stops.
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    /// The members emitted so far, in emission order.
    pub items: Vec<PointId>,
}

impl CollectSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, returning the collected members in emission order.
    pub fn into_items(self) -> Vec<PointId> {
        self.items
    }
}

impl ResultSink for CollectSink {
    #[inline]
    fn emit(&mut self, p: PointId) -> bool {
        self.items.push(p);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sink_keeps_emission_order() {
        let mut sink = CollectSink::new();
        for p in [5u32, 1, 3] {
            assert!(sink.emit(p));
        }
        assert_eq!(sink.into_items(), vec![5, 1, 3]);
    }

    #[test]
    fn closures_are_sinks() {
        let mut seen = Vec::new();
        let mut sink = |p: PointId| {
            seen.push(p);
            seen.len() < 2
        };
        assert!(ResultSink::emit(&mut sink, 7));
        assert!(!ResultSink::emit(&mut sink, 8));
        assert_eq!(seen, vec![7, 8]);
    }
}
