//! Sort-First Skyline (SFS) and the paper's SFS-D baseline.
//!
//! SFS (Chomicki, Godfrey, Gryz, Liang) presorts the points by a preference function `f` that
//! is monotone with respect to dominance (`p ≺ q ⇒ f(p) < f(q)`). After the sort a point can
//! only be dominated by points that appear *before* it, so one scan with a growing skyline
//! list suffices, and every point appended to the list is final — the algorithm is
//! progressive.
//!
//! **SFS-D** in the paper is exactly this algorithm run over the *whole dataset* with the
//! ranking induced by the query's implicit preference; it needs no preprocessing but pays the
//! full `O(N log N + N·n)` cost on every query.

use super::sink::{CollectSink, ResultSink};
use super::AlgoStats;
use crate::deadline::{Deadline, DEADLINE_CHECK_INTERVAL};
use crate::dominance::{Dominance, DominanceContext};
use crate::error::Result;
use crate::order::{Preference, Template};
use crate::score::ScoreFn;
use crate::value::PointId;

/// Computes the skyline of `points` by presorting with `score` and scanning.
///
/// `score` must be monotone w.r.t. the dominance relation of `ctx`; the [`ScoreFn`] built from
/// the same preference that produced `ctx` satisfies this by construction.
pub fn skyline_sorted(
    ctx: &DominanceContext<'_>,
    score: &ScoreFn,
    points: &[PointId],
) -> Vec<PointId> {
    skyline_sorted_with_stats(ctx, score, points).0
}

/// Like [`skyline_sorted`] but also reports work counters.
pub fn skyline_sorted_with_stats(
    ctx: &DominanceContext<'_>,
    score: &ScoreFn,
    points: &[PointId],
) -> (Vec<PointId>, AlgoStats) {
    let sorted = score.sort_by_score(ctx.dataset(), points);
    scan_presorted_with_stats(ctx, &sorted)
}

/// The elimination scan of SFS over an already presorted candidate list.
///
/// Exposed separately because Adaptive SFS maintains its own sorted list and only needs the
/// scan. Points are emitted in scan order; the returned vector is therefore sorted by score,
/// not by point id. Generic over [`Dominance`], so the scan runs against either the
/// reference context or the compiled kernel.
pub fn scan_presorted<D: Dominance + ?Sized>(ctx: &D, sorted: &[PointId]) -> Vec<PointId> {
    scan_presorted_with_stats(ctx, sorted).0
}

/// Like [`scan_presorted`] but also reports work counters.
pub fn scan_presorted_with_stats<D: Dominance + ?Sized>(
    ctx: &D,
    sorted: &[PointId],
) -> (Vec<PointId>, AlgoStats) {
    scan_presorted_deadline(ctx, sorted, &Deadline::none())
        .expect("an unbounded deadline never expires")
}

/// The elimination scan with cooperative cancellation: the request [`Deadline`] is polled
/// once per [`DEADLINE_CHECK_INTERVAL`] candidates (one packed window block), so an expired
/// budget stops the scan within one block instead of running the tail to completion. Returns
/// [`crate::SkylineError::DeadlineExceeded`] on expiry; the partial window is discarded.
pub fn scan_presorted_deadline<D: Dominance + ?Sized>(
    ctx: &D,
    sorted: &[PointId],
    deadline: &Deadline,
) -> Result<(Vec<PointId>, AlgoStats)> {
    let mut sink = CollectSink::new();
    let stats = scan_presorted_sink(ctx, sorted, deadline, &mut sink)?;
    Ok((sink.into_items(), stats))
}

/// The sink-driven core of the elimination scan: every accepted point is pushed into `sink`
/// the moment it is accepted. Because the candidates are presorted by a monotone score, an
/// accepted point can never be evicted later — each emission is a **final** skyline member,
/// which is what makes the scan streamable. The batch form ([`scan_presorted_deadline`]) is
/// this function with a [`CollectSink`].
///
/// The sink may stop the scan early by returning `false` from [`ResultSink::emit`]; the scan
/// then returns normally with the counters accumulated so far. Deadlines are polled at block
/// granularity exactly as in the batch form.
pub fn scan_presorted_sink<D: Dominance + ?Sized, S: ResultSink>(
    ctx: &D,
    sorted: &[PointId],
    deadline: &Deadline,
    sink: &mut S,
) -> Result<AlgoStats> {
    let mut stats = AlgoStats::default();
    // The accepted window lives in the implementation's own representation (the compiled
    // kernel densifies accepted rows for sequential walks); the test count matches the naive
    // loop — tests up to and including the first dominator.
    let mut window = D::Window::default();
    ctx.reset_window(&mut window);
    let mut accepted = 0usize;
    let bounded = deadline.is_bounded();
    for (i, &p) in sorted.iter().enumerate() {
        if bounded && i % DEADLINE_CHECK_INTERVAL == 0 {
            deadline.check()?;
        }
        stats.points_scanned += 1;
        match ctx.window_first_dominator(&mut window, p) {
            Some(i) => stats.dominance_tests += i as u64 + 1,
            None => {
                stats.dominance_tests += accepted as u64;
                ctx.push_window(&mut window, p);
                accepted += 1;
                if !sink.emit(p) {
                    break;
                }
            }
        }
    }
    stats.skyline_size = accepted;
    Ok(stats)
}

/// The paper's **SFS-D** baseline: answer one implicit-preference query by running SFS over
/// the entire dataset with the query's ranking. Returns point ids sorted ascending.
pub fn sfs_d(
    ctx: &DominanceContext<'_>,
    template: &Template,
    query: &Preference,
) -> Result<Vec<PointId>> {
    let _ = template; // the dominance context already folds the template in; kept for symmetry
    let score = ScoreFn::for_preference(ctx.dataset().schema(), query)?;
    let points: Vec<PointId> = ctx.dataset().point_ids().collect();
    let mut result = skyline_sorted(ctx, &score, &points);
    result.sort_unstable();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bnl;
    use crate::dataset::{Dataset, DatasetBuilder, RowValue};
    use crate::schema::{Dimension, Schema};

    fn vacation_data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group) in [
            (1600.0, 4.0, "T"),
            (2400.0, 1.0, "T"),
            (3000.0, 5.0, "H"),
            (3600.0, 4.0, "H"),
            (2400.0, 2.0, "M"),
            (3000.0, 3.0, "M"),
        ] {
            b.push_row([RowValue::Num(price), RowValue::Num(-class), group.into()])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn sfs_matches_bnl_on_table2_preferences() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        for text in [
            "*",
            "T < M < *",
            "H < M < *",
            "H < M < T",
            "H < T < *",
            "M < *",
        ] {
            let pref = Preference::parse(&schema, [("hotel-group", text)]).unwrap();
            let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
            let expected = bnl::skyline(&ctx);
            let got = sfs_d(&ctx, &template, &pref).unwrap();
            assert_eq!(got, expected, "preference {text}");
        }
    }

    #[test]
    fn scan_presorted_is_progressive() {
        // With a monotone sort order, every emitted point must be a true skyline point even if
        // we stop the scan early.
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let pref = Preference::parse(&schema, [("hotel-group", "T < M < *")]).unwrap();
        let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
        let score = ScoreFn::for_preference(&schema, &pref).unwrap();
        let sorted = score.sort_by_score(&data, &data.point_ids().collect::<Vec<_>>());
        let full = scan_presorted(&ctx, &sorted);
        for k in 0..sorted.len() {
            let partial = scan_presorted(&ctx, &sorted[..k]);
            assert!(
                partial.iter().all(|p| full.contains(p)),
                "prefix scan emitted a non-skyline point"
            );
        }
    }

    #[test]
    fn sink_scan_matches_batch_scan_and_stops_early() {
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let pref = Preference::parse(&schema, [("hotel-group", "T < M < *")]).unwrap();
        let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
        let score = ScoreFn::for_preference(&schema, &pref).unwrap();
        let sorted = score.sort_by_score(&data, &data.point_ids().collect::<Vec<_>>());
        let (batch, batch_stats) =
            scan_presorted_deadline(&ctx, &sorted, &Deadline::none()).unwrap();
        // A closure sink sees exactly the batch emission sequence.
        let mut streamed = Vec::new();
        let stats = scan_presorted_sink(&ctx, &sorted, &Deadline::none(), &mut |p: PointId| {
            streamed.push(p);
            true
        })
        .unwrap();
        assert_eq!(streamed, batch);
        assert_eq!(stats, batch_stats);
        // Stopping after the first emission ends the scan without error.
        let mut first = Vec::new();
        let stats = scan_presorted_sink(&ctx, &sorted, &Deadline::none(), &mut |p: PointId| {
            first.push(p);
            false
        })
        .unwrap();
        assert_eq!(first, batch[..1]);
        assert_eq!(stats.skyline_size, 1);
    }

    #[test]
    fn stats_reflect_scan_size() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let pref = Preference::none(1);
        let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
        let score = ScoreFn::for_preference(data.schema(), &pref).unwrap();
        let (sky, stats) =
            skyline_sorted_with_stats(&ctx, &score, &data.point_ids().collect::<Vec<_>>());
        assert_eq!(stats.points_scanned, 6);
        assert_eq!(stats.skyline_size, sky.len());
        assert_eq!(sky.len(), 4);
    }

    #[test]
    fn expired_deadline_stops_the_scan() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let pref = Preference::none(1);
        let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
        let score = ScoreFn::for_preference(data.schema(), &pref).unwrap();
        let all: Vec<PointId> = data.point_ids().collect();
        let sorted = score.sort_by_score(&data, &all);
        // Unbounded: identical to the plain scan.
        let (sky, _) = scan_presorted_deadline(&ctx, &sorted, &Deadline::none()).unwrap();
        assert_eq!(sky, scan_presorted(&ctx, &sorted));
        // Already expired: the very first block check aborts.
        let expired = Deadline::within(std::time::Duration::ZERO);
        assert_eq!(
            scan_presorted_deadline(&ctx, &sorted, &expired).unwrap_err(),
            crate::SkylineError::DeadlineExceeded
        );
        // A fired cancel token aborts the same way.
        let token = crate::CancelToken::new();
        token.cancel();
        let cancelled = Deadline::none().with_cancel(token);
        assert!(scan_presorted_deadline(&ctx, &sorted, &cancelled).is_err());
    }

    #[test]
    fn empty_input_gives_empty_skyline() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let score = ScoreFn::default_ranking(data.schema());
        assert!(skyline_sorted(&ctx, &score, &[]).is_empty());
    }
}
