//! Cross-fragment skyline merge: the divide-and-conquer merge step promoted to a
//! first-class query-time operator.
//!
//! The union property behind both entry points: for any partition `D = D₁ ∪ … ∪ Dₘ`,
//! `SKY(D) ⊆ SKY(D₁) ∪ … ∪ SKY(Dₘ)` — a point dominated inside its own fragment is dominated
//! in the union, so merging the per-fragment skylines with one cross-fragment elimination
//! pass yields exactly the global skyline. This holds for the paper's partial-order
//! preferences because dominance is transitive (numeric `≤` composed with strict-order
//! closures), not just for total orders.
//!
//! Two forms:
//!
//! * [`merge_skylines`] — all fragments live in **one** [`PointBlock`](crate::PointBlock) (the Adaptive-SFS
//!   parallel build merges its per-chunk skylines this way);
//! * [`SkylineMerger`] — fragments come from **different** sources with their own row-id
//!   spaces (a sharded service merges per-shard skylines this way): callers push each
//!   candidate's raw values and get back `(source, id)` tags.
//!
//! Both preserve the input/push order of the surviving points, so feeding score-sorted
//! candidates yields a score-sorted skyline (what the SFS machinery relies on).

use crate::error::{Result, SkylineError};
use crate::kernel::{kernel_mode, CompiledOrder, CompiledRelation, KernelMode};
use crate::lanes::PackedLanes;
use crate::value::{PointId, ValueId};

/// Merges per-fragment skylines of disjoint row sets of one block into the skyline of their
/// union, preserving the concatenated input order of the survivors.
///
/// Each fragment must already be a skyline of its own rows (points dominated by a
/// fragment-mate would be eliminated here too, so the answer stays correct — it is the
/// near-quadratic merge that is sized for pre-reduced inputs). Fragments must not repeat a
/// row id: duplicates are never dominated by themselves and would both survive.
pub fn merge_skylines(relation: &CompiledRelation, fragments: &[&[PointId]]) -> Vec<PointId> {
    let total = fragments.iter().map(|f| f.len()).sum();
    let mut candidates: Vec<PointId> = Vec::with_capacity(total);
    for fragment in fragments {
        candidates.extend_from_slice(fragment);
    }
    let block = relation.block();
    let alive = if kernel_mode() == KernelMode::Packed {
        packed_eliminate(
            relation.orders(),
            block.numeric_dims(),
            candidates.len(),
            |c| block.numeric_row(candidates[c]),
            |c| block.nominal_row(candidates[c]),
        )
    } else {
        eliminate(candidates.len(), |p, q| {
            relation.dominates(candidates[p], candidates[q])
        })
    };
    candidates
        .into_iter()
        .zip(alive)
        .filter_map(|(p, keep)| keep.then_some(p))
        .collect()
}

/// The bit-parallel form of [`eliminate`]: all candidates are packed into 64-row lane
/// blocks up front, then each surviving candidate probes the lanes **strictly before its
/// own** (a prefix `limit`) for a dominator and, failing that, mask-evicts the earlier
/// lanes it dominates. Equivalent to the scalar interleaved loop: if an earlier survivor
/// `k` dominates `c`, transitivity puts anything `c` could kill inside `k`'s kill set, and
/// `k` already cleared it on its own turn.
fn packed_eliminate<'a>(
    orders: &[CompiledOrder],
    numeric_dims: usize,
    n: usize,
    numeric_row: impl Fn(usize) -> &'a [f64],
    nominal_row: impl Fn(usize) -> &'a [ValueId],
) -> Vec<bool> {
    let mut lanes = PackedLanes::default();
    lanes.reset(numeric_dims, orders.len());
    let mut probe: Vec<u16> = Vec::with_capacity(orders.len() * 2);
    let stage_probe = |probe: &mut Vec<u16>, c: usize| {
        probe.clear();
        for (order, &v) in orders.iter().zip(nominal_row(c)) {
            probe.push(v);
            probe.push(order.layer(v));
        }
    };
    for c in 0..n {
        stage_probe(&mut probe, c);
        lanes.push(numeric_row(c), &probe);
    }
    for c in 0..n {
        if !lanes.is_valid(c) {
            continue;
        }
        stage_probe(&mut probe, c);
        let pn = numeric_row(c);
        if lanes.first_dominator(orders, pn, &probe, c).is_some() {
            lanes.clear_valid(c);
        } else {
            lanes.clear_dominated_by(orders, pn, &probe, c);
        }
    }
    (0..n).map(|c| lanes.is_valid(c)).collect()
}

/// The shared cross-candidate elimination: index `c` dies when an earlier survivor dominates
/// it, and kills earlier survivors it dominates. Output flags preserve input order.
fn eliminate(n: usize, dominates: impl Fn(usize, usize) -> bool) -> Vec<bool> {
    let mut alive = vec![true; n];
    for c in 0..n {
        if !alive[c] {
            continue;
        }
        for k in 0..c {
            if !alive[k] {
                continue;
            }
            if dominates(k, c) {
                alive[c] = false;
                break;
            }
            if dominates(c, k) {
                alive[k] = false;
            }
        }
    }
    alive
}

/// Push-based cross-source skyline merge on compiled nominal orders.
///
/// Sources with different row-id spaces (dataset shards, remote partitions) cannot share a
/// [`PointBlock`](crate::PointBlock), so the merger owns a row-major copy of the candidate values instead:
/// push every per-source skyline member with its raw values, then [`SkylineMerger::merge`]
/// returns the `(source, id)` tags of the global skyline in push order.
///
/// Dominance matches [`CompiledRelation::dominates`] exactly — numeric smaller-is-better
/// with NaN neither blocking nor establishing dominance, nominal strict preference through
/// the compiled closures, and value-identical candidates co-existing.
#[derive(Debug, Clone)]
pub struct SkylineMerger {
    orders: Vec<CompiledOrder>,
    numeric_dims: usize,
    numerics: Vec<f64>,
    nominals: Vec<ValueId>,
    tags: Vec<(usize, PointId)>,
}

impl SkylineMerger {
    /// An empty merger over `numeric_dims` numeric dimensions and one compiled order per
    /// nominal dimension (compile them once per query and reuse across sources).
    pub fn new(orders: Vec<CompiledOrder>, numeric_dims: usize) -> Self {
        Self {
            orders,
            numeric_dims,
            numerics: Vec::new(),
            nominals: Vec::new(),
            tags: Vec::new(),
        }
    }

    /// Number of candidates pushed so far.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True when no candidate has been pushed.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Pushes one candidate: its source index, its id within that source, and its raw values
    /// in dimension-index order. Values must match the merger's dimensionality, and every
    /// nominal value must be inside its compiled order's domain.
    pub fn push(
        &mut self,
        source: usize,
        id: PointId,
        numeric: &[f64],
        nominal: &[ValueId],
    ) -> Result<()> {
        if numeric.len() != self.numeric_dims || nominal.len() != self.orders.len() {
            return Err(SkylineError::InvalidArgument(format!(
                "candidate has {} numeric / {} nominal values but the merger expects {} / {}",
                numeric.len(),
                nominal.len(),
                self.numeric_dims,
                self.orders.len()
            )));
        }
        for (j, (&v, order)) in nominal.iter().zip(&self.orders).enumerate() {
            if (v as usize) >= order.cardinality() {
                return Err(SkylineError::InvalidArgument(format!(
                    "nominal value {v} on dimension {j} is outside the compiled order's \
                     cardinality {}",
                    order.cardinality()
                )));
            }
        }
        self.numerics.extend_from_slice(numeric);
        self.nominals.extend_from_slice(nominal);
        self.tags.push((source, id));
        Ok(())
    }

    /// Runs the cross-source elimination and returns the surviving `(source, id)` tags in
    /// push order. The merger is left empty, ready for the next query.
    pub fn merge(&mut self) -> Vec<(usize, PointId)> {
        let alive = if kernel_mode() == KernelMode::Packed {
            packed_eliminate(
                &self.orders,
                self.numeric_dims,
                self.tags.len(),
                |c| self.numeric_row(c),
                |c| self.nominal_row(c),
            )
        } else {
            eliminate(self.tags.len(), |p, q| self.dominates(p, q))
        };
        let survivors = self
            .tags
            .iter()
            .zip(alive)
            .filter_map(|(&tag, keep)| keep.then_some(tag))
            .collect();
        self.numerics.clear();
        self.nominals.clear();
        self.tags.clear();
        survivors
    }

    fn numeric_row(&self, c: usize) -> &[f64] {
        &self.numerics[c * self.numeric_dims..(c + 1) * self.numeric_dims]
    }

    fn nominal_row(&self, c: usize) -> &[ValueId] {
        let dims = self.orders.len();
        &self.nominals[c * dims..(c + 1) * dims]
    }

    /// Candidate-index dominance, mirroring [`CompiledRelation::dominates`].
    fn dominates(&self, p: usize, q: usize) -> bool {
        let mut strict = false;
        for (pv, qv) in self.numeric_row(p).iter().zip(self.numeric_row(q)) {
            if pv > qv {
                return false;
            }
            strict |= pv < qv;
        }
        for (order, (&pv, &qv)) in self
            .orders
            .iter()
            .zip(self.nominal_row(p).iter().zip(self.nominal_row(q)))
        {
            if pv != qv {
                if !order.strictly_preferred(pv, qv) {
                    return false;
                }
                strict = true;
            }
        }
        strict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bnl;
    use crate::dataset::{Dataset, DatasetBuilder, RowValue};
    use crate::dominance::DominanceContext;
    use crate::kernel::PointBlock;
    use crate::order::{Preference, Template};
    use crate::schema::{Dimension, Schema};
    use std::sync::Arc;

    /// Table 3 of the paper: two numeric + two nominal dimensions, six rows.
    fn table3_data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group, airline) in [
            (1600.0, 4.0, "T", "G"),
            (2400.0, 1.0, "T", "G"),
            (3000.0, 5.0, "H", "G"),
            (3600.0, 4.0, "H", "R"),
            (2400.0, 2.0, "M", "R"),
            (3000.0, 3.0, "M", "W"),
        ] {
            b.push_row([
                RowValue::Num(price),
                RowValue::Num(-class),
                group.into(),
                airline.into(),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    fn query_relation(data: &Dataset, spec: &[(&str, &str)]) -> (CompiledRelation, Preference) {
        let template = Template::empty(data.schema());
        let pref = Preference::parse(data.schema(), spec.to_vec()).unwrap();
        let rel = CompiledRelation::for_query(
            Arc::new(PointBlock::new(data)),
            data.schema(),
            &template,
            &pref,
        )
        .unwrap();
        (rel, pref)
    }

    fn oracle(data: &Dataset, pref: &Preference) -> Vec<PointId> {
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_query(data, &template, pref).unwrap();
        let mut sky = bnl::skyline(&ctx);
        sky.sort_unstable();
        sky
    }

    #[test]
    fn merge_of_every_two_way_split_is_the_global_skyline() {
        let data = table3_data();
        let (rel, pref) = query_relation(&data, &[("hotel-group", "T < *"), ("airline", "G < *")]);
        let expected = oracle(&data, &pref);
        let all: Vec<PointId> = data.point_ids().collect();
        for cut in 0..=all.len() {
            let (left, right) = all.split_at(cut);
            // Per-fragment skylines first (the operator's contract), then the merge.
            let ctx =
                DominanceContext::for_query(&data, &Template::empty(data.schema()), &pref).unwrap();
            let left_sky = bnl::skyline_of(&ctx, left);
            let right_sky = bnl::skyline_of(&ctx, right);
            let mut merged = merge_skylines(&rel, &[&left_sky, &right_sky]);
            merged.sort_unstable();
            assert_eq!(merged, expected, "split at {cut}");
        }
    }

    #[test]
    fn merge_preserves_input_order() {
        let data = table3_data();
        let (rel, _) = query_relation(&data, &[("hotel-group", "T < *")]);
        // Feed raw fragments (each a singleton, trivially its own skyline) in a fixed order:
        // the survivors must come back in that order, not sorted.
        let fragments: Vec<Vec<PointId>> =
            (0..data.len() as PointId).rev().map(|p| vec![p]).collect();
        let views: Vec<&[PointId]> = fragments.iter().map(Vec::as_slice).collect();
        let merged = merge_skylines(&rel, &views);
        let mut sorted_back = merged.clone();
        sorted_back.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(
            merged, sorted_back,
            "survivors stay in (descending) feed order"
        );
    }

    #[test]
    fn merger_matches_single_block_merge_across_sources() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let pref = Preference::parse(
            data.schema(),
            [("hotel-group", "T < *"), ("airline", "G < *")],
        )
        .unwrap();
        let orders: Vec<CompiledOrder> = template
            .effective_orders(data.schema(), &pref)
            .unwrap()
            .iter()
            .map(CompiledOrder::compile)
            .collect();

        // Split the rows across two "shards" (even/odd), push each shard's local skyline.
        let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
        let shard_rows: [Vec<PointId>; 2] = [
            data.point_ids().filter(|p| p % 2 == 0).collect(),
            data.point_ids().filter(|p| p % 2 == 1).collect(),
        ];
        let mut merger = SkylineMerger::new(orders, data.schema().numeric_count());
        for (s, rows) in shard_rows.iter().enumerate() {
            for &p in &bnl::skyline_of(&ctx, rows) {
                let numeric: Vec<f64> = (0..data.schema().numeric_count())
                    .map(|j| data.numeric(p, j))
                    .collect();
                let nominal: Vec<ValueId> = (0..data.schema().nominal_count())
                    .map(|j| data.nominal(p, j))
                    .collect();
                merger.push(s, p, &numeric, &nominal).unwrap();
            }
        }
        assert!(!merger.is_empty());
        let mut global: Vec<PointId> = merger.merge().into_iter().map(|(_, p)| p).collect();
        global.sort_unstable();
        assert_eq!(global, oracle(&data, &pref));
        assert!(merger.is_empty(), "merge drains the candidates");
    }

    #[test]
    fn value_identical_candidates_across_sources_both_survive() {
        let orders = vec![CompiledOrder::compile(&crate::order::PartialOrder::empty(
            2,
        ))];
        let mut merger = SkylineMerger::new(orders, 1);
        merger.push(0, 7, &[1.0], &[0]).unwrap();
        merger.push(1, 3, &[1.0], &[0]).unwrap();
        assert_eq!(merger.merge(), vec![(0, 7), (1, 3)]);
    }

    #[test]
    fn merger_rejects_mismatched_rows() {
        let orders = vec![CompiledOrder::compile(&crate::order::PartialOrder::empty(
            2,
        ))];
        let mut merger = SkylineMerger::new(orders, 2);
        assert!(merger.push(0, 0, &[1.0], &[0]).is_err(), "numeric arity");
        assert!(
            merger.push(0, 0, &[1.0, 2.0], &[]).is_err(),
            "nominal arity"
        );
        assert!(
            merger.push(0, 0, &[1.0, 2.0], &[5]).is_err(),
            "value outside the order's domain"
        );
        assert_eq!(merger.len(), 0);
    }

    #[test]
    fn nan_values_neither_block_nor_establish_dominance() {
        let orders: Vec<CompiledOrder> = Vec::new();
        let mut merger = SkylineMerger::new(orders, 2);
        // (NaN, 1) vs (2, 1): no strict edge either way — both survive.
        merger.push(0, 0, &[f64::NAN, 1.0], &[]).unwrap();
        merger.push(0, 1, &[2.0, 1.0], &[]).unwrap();
        assert_eq!(merger.merge(), vec![(0, 0), (0, 1)]);
    }
}
