//! Cross-fragment skyline merge: the divide-and-conquer merge step promoted to a
//! first-class query-time operator.
//!
//! The union property behind both entry points: for any partition `D = D₁ ∪ … ∪ Dₘ`,
//! `SKY(D) ⊆ SKY(D₁) ∪ … ∪ SKY(Dₘ)` — a point dominated inside its own fragment is dominated
//! in the union, so merging the per-fragment skylines with one cross-fragment elimination
//! pass yields exactly the global skyline. This holds for the paper's partial-order
//! preferences because dominance is transitive (numeric `≤` composed with strict-order
//! closures), not just for total orders.
//!
//! Two forms:
//!
//! * [`merge_skylines`] — all fragments live in **one** [`PointBlock`](crate::PointBlock) (the Adaptive-SFS
//!   parallel build merges its per-chunk skylines this way);
//! * [`SkylineMerger`] — fragments come from **different** sources with their own row-id
//!   spaces (a sharded service merges per-shard skylines this way): callers push each
//!   candidate's raw values and get back `(source, id)` tags.
//!
//! Both preserve the input/push order of the surviving points, so feeding score-sorted
//! candidates yields a score-sorted skyline (what the SFS machinery relies on).

use crate::error::{Result, SkylineError};
use crate::kernel::{kernel_mode, CompiledOrder, CompiledRelation, KernelMode};
use crate::lanes::PackedLanes;
use crate::value::{PointId, ValueId};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Merges per-fragment skylines of disjoint row sets of one block into the skyline of their
/// union, preserving the concatenated input order of the survivors.
///
/// Each fragment must already be a skyline of its own rows (points dominated by a
/// fragment-mate would be eliminated here too, so the answer stays correct — it is the
/// near-quadratic merge that is sized for pre-reduced inputs). Fragments must not repeat a
/// row id: duplicates are never dominated by themselves and would both survive.
pub fn merge_skylines(relation: &CompiledRelation, fragments: &[&[PointId]]) -> Vec<PointId> {
    let total = fragments.iter().map(|f| f.len()).sum();
    let mut candidates: Vec<PointId> = Vec::with_capacity(total);
    for fragment in fragments {
        candidates.extend_from_slice(fragment);
    }
    let block = relation.block();
    let alive = if kernel_mode() == KernelMode::Packed {
        packed_eliminate(
            relation.orders(),
            block.numeric_dims(),
            candidates.len(),
            |c| block.numeric_row(candidates[c]),
            |c| block.nominal_row(candidates[c]),
        )
    } else {
        eliminate(candidates.len(), |p, q| {
            relation.dominates(candidates[p], candidates[q])
        })
    };
    candidates
        .into_iter()
        .zip(alive)
        .filter_map(|(p, keep)| keep.then_some(p))
        .collect()
}

/// The bit-parallel form of [`eliminate`]: all candidates are packed into 64-row lane
/// blocks up front, then each surviving candidate probes the lanes **strictly before its
/// own** (a prefix `limit`) for a dominator and, failing that, mask-evicts the earlier
/// lanes it dominates. Equivalent to the scalar interleaved loop: if an earlier survivor
/// `k` dominates `c`, transitivity puts anything `c` could kill inside `k`'s kill set, and
/// `k` already cleared it on its own turn.
fn packed_eliminate<'a>(
    orders: &[CompiledOrder],
    numeric_dims: usize,
    n: usize,
    numeric_row: impl Fn(usize) -> &'a [f64],
    nominal_row: impl Fn(usize) -> &'a [ValueId],
) -> Vec<bool> {
    let mut lanes = PackedLanes::default();
    lanes.reset(numeric_dims, orders.len());
    let mut probe: Vec<u16> = Vec::with_capacity(orders.len() * 2);
    let stage_probe = |probe: &mut Vec<u16>, c: usize| {
        probe.clear();
        for (order, &v) in orders.iter().zip(nominal_row(c)) {
            probe.push(v);
            probe.push(order.layer(v));
        }
    };
    for c in 0..n {
        stage_probe(&mut probe, c);
        lanes.push(numeric_row(c), &probe);
    }
    for c in 0..n {
        if !lanes.is_valid(c) {
            continue;
        }
        stage_probe(&mut probe, c);
        let pn = numeric_row(c);
        if lanes.first_dominator(orders, pn, &probe, c).is_some() {
            lanes.clear_valid(c);
        } else {
            lanes.clear_dominated_by(orders, pn, &probe, c);
        }
    }
    (0..n).map(|c| lanes.is_valid(c)).collect()
}

/// The shared cross-candidate elimination: index `c` dies when an earlier survivor dominates
/// it, and kills earlier survivors it dominates. Output flags preserve input order.
fn eliminate(n: usize, dominates: impl Fn(usize, usize) -> bool) -> Vec<bool> {
    let mut alive = vec![true; n];
    for c in 0..n {
        if !alive[c] {
            continue;
        }
        for k in 0..c {
            if !alive[k] {
                continue;
            }
            if dominates(k, c) {
                alive[c] = false;
                break;
            }
            if dominates(c, k) {
                alive[k] = false;
            }
        }
    }
    alive
}

/// Push-based cross-source skyline merge on compiled nominal orders.
///
/// Sources with different row-id spaces (dataset shards, remote partitions) cannot share a
/// [`PointBlock`](crate::PointBlock), so the merger owns a row-major copy of the candidate values instead:
/// push every per-source skyline member with its raw values, then [`SkylineMerger::merge`]
/// returns the `(source, id)` tags of the global skyline in push order.
///
/// Dominance matches [`CompiledRelation::dominates`] exactly — numeric smaller-is-better
/// with NaN neither blocking nor establishing dominance, nominal strict preference through
/// the compiled closures, and value-identical candidates co-existing.
#[derive(Debug, Clone)]
pub struct SkylineMerger {
    orders: Vec<CompiledOrder>,
    numeric_dims: usize,
    numerics: Vec<f64>,
    nominals: Vec<ValueId>,
    tags: Vec<(usize, PointId)>,
}

impl SkylineMerger {
    /// An empty merger over `numeric_dims` numeric dimensions and one compiled order per
    /// nominal dimension (compile them once per query and reuse across sources).
    pub fn new(orders: Vec<CompiledOrder>, numeric_dims: usize) -> Self {
        Self {
            orders,
            numeric_dims,
            numerics: Vec::new(),
            nominals: Vec::new(),
            tags: Vec::new(),
        }
    }

    /// Number of candidates pushed so far.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True when no candidate has been pushed.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Pushes one candidate: its source index, its id within that source, and its raw values
    /// in dimension-index order. Values must match the merger's dimensionality, and every
    /// nominal value must be inside its compiled order's domain.
    pub fn push(
        &mut self,
        source: usize,
        id: PointId,
        numeric: &[f64],
        nominal: &[ValueId],
    ) -> Result<()> {
        if numeric.len() != self.numeric_dims || nominal.len() != self.orders.len() {
            return Err(SkylineError::InvalidArgument(format!(
                "candidate has {} numeric / {} nominal values but the merger expects {} / {}",
                numeric.len(),
                nominal.len(),
                self.numeric_dims,
                self.orders.len()
            )));
        }
        for (j, (&v, order)) in nominal.iter().zip(&self.orders).enumerate() {
            if (v as usize) >= order.cardinality() {
                return Err(SkylineError::InvalidArgument(format!(
                    "nominal value {v} on dimension {j} is outside the compiled order's \
                     cardinality {}",
                    order.cardinality()
                )));
            }
        }
        self.numerics.extend_from_slice(numeric);
        self.nominals.extend_from_slice(nominal);
        self.tags.push((source, id));
        Ok(())
    }

    /// Runs the cross-source elimination and returns the surviving `(source, id)` tags in
    /// push order. The merger is left empty, ready for the next query.
    pub fn merge(&mut self) -> Vec<(usize, PointId)> {
        let alive = if kernel_mode() == KernelMode::Packed {
            packed_eliminate(
                &self.orders,
                self.numeric_dims,
                self.tags.len(),
                |c| self.numeric_row(c),
                |c| self.nominal_row(c),
            )
        } else {
            eliminate(self.tags.len(), |p, q| self.dominates(p, q))
        };
        let survivors = self
            .tags
            .iter()
            .zip(alive)
            .filter_map(|(&tag, keep)| keep.then_some(tag))
            .collect();
        self.numerics.clear();
        self.nominals.clear();
        self.tags.clear();
        survivors
    }

    fn numeric_row(&self, c: usize) -> &[f64] {
        &self.numerics[c * self.numeric_dims..(c + 1) * self.numeric_dims]
    }

    fn nominal_row(&self, c: usize) -> &[ValueId] {
        let dims = self.orders.len();
        &self.nominals[c * dims..(c + 1) * dims]
    }

    /// Candidate-index dominance, mirroring [`CompiledRelation::dominates`].
    fn dominates(&self, p: usize, q: usize) -> bool {
        let mut strict = false;
        for (pv, qv) in self.numeric_row(p).iter().zip(self.numeric_row(q)) {
            if pv > qv {
                return false;
            }
            strict |= pv < qv;
        }
        for (order, (&pv, &qv)) in self
            .orders
            .iter()
            .zip(self.nominal_row(p).iter().zip(self.nominal_row(q)))
        {
            if pv != qv {
                if !order.strictly_preferred(pv, qv) {
                    return false;
                }
                strict = true;
            }
        }
        strict
    }
}

/// One candidate buffered inside a [`ProgressiveMerger`], ordered by
/// `(score, source, id)` with [`f64::total_cmp`] so the resolution order is total and
/// deterministic even in the presence of NaN scores.
#[derive(Debug, Clone)]
struct PendingCandidate {
    score: f64,
    source: usize,
    id: PointId,
    numeric: Vec<f64>,
    nominal: Vec<ValueId>,
}

impl PartialEq for PendingCandidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for PendingCandidate {}
impl PartialOrd for PendingCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingCandidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then(self.source.cmp(&other.source))
            .then(self.id.cmp(&other.id))
    }
}

/// The incremental form of [`SkylineMerger`]: per-source **streams** feed it and globally
/// confirmed skyline members come out as early as the frontiers allow, instead of only after
/// every source has finished.
///
/// Each source must emit its candidates in non-decreasing score order under a **shared**
/// monotone score function (`p ≺ q ⇒ f(p) < f(q)` — the [`crate::score::ScoreFn`] of the
/// query preference). Offering a candidate advances its source's *frontier* to that score; a
/// buffered candidate at score `s` is resolved once every unfinished source's frontier has
/// reached `s`: by monotonicity any potential dominator scores strictly below `s`, so it has
/// already been emitted by its source and resolved here. Resolution happens in ascending
/// global score order, testing each candidate against the already-published survivors only —
/// sufficient by transitivity, exactly as in the batch elimination. Published rows are
/// **final**: the merged stream never retracts, and once every source is finished the
/// published set equals what [`SkylineMerger`] would have produced from the same candidates.
///
/// # Bounded staleness
///
/// By default a single stalled source gates every other stream's buffered candidates
/// forever. A **laggard timeout** ([`ProgressiveMerger::set_laggard_timeout`]) bounds that
/// staleness: [`ProgressiveMerger::take_timed_out`] force-finishes every *blocking* source
/// (one whose frontier sits below the buffered head) that has made no progress for the
/// timeout, so the next [`ProgressiveMerger::drain_ready`] publishes every row that only the
/// laggards were gating — each row then waits on the **responsive** sources only. Cutting a
/// source loose forfeits its not-yet-emitted dominators, so the caller must surface the
/// returned sources through its partial/degraded answer semantics.
#[derive(Debug, Clone)]
pub struct ProgressiveMerger {
    orders: Vec<CompiledOrder>,
    numeric_dims: usize,
    /// Per-source score frontier; `None` once the source has finished (treated as +∞).
    frontiers: Vec<Option<f64>>,
    /// When each source last advanced its frontier (its construction time before the first
    /// offer) — the staleness clock behind the laggard timeout.
    last_progress: Vec<Instant>,
    /// Staleness bound for [`ProgressiveMerger::take_timed_out`]; `None` (the default)
    /// means sources are never timed out.
    laggard_timeout: Option<Duration>,
    pending: BinaryHeap<Reverse<PendingCandidate>>,
    /// Row-major values of the published survivors (the only dominators later candidates
    /// ever need to be tested against).
    published_numerics: Vec<f64>,
    published_nominals: Vec<ValueId>,
    published: usize,
}

impl ProgressiveMerger {
    /// An empty merger over `sources` streams, `numeric_dims` numeric dimensions and one
    /// compiled order per nominal dimension (compile them once per query, as for
    /// [`SkylineMerger`]).
    pub fn new(orders: Vec<CompiledOrder>, numeric_dims: usize, sources: usize) -> Self {
        Self {
            orders,
            numeric_dims,
            frontiers: vec![Some(f64::NEG_INFINITY); sources],
            last_progress: vec![Instant::now(); sources],
            laggard_timeout: None,
            pending: BinaryHeap::new(),
            published_numerics: Vec::new(),
            published_nominals: Vec::new(),
            published: 0,
        }
    }

    /// Sets (or clears) the bounded-staleness timeout consulted by
    /// [`ProgressiveMerger::take_timed_out`].
    pub fn set_laggard_timeout(&mut self, timeout: Option<Duration>) {
        self.laggard_timeout = timeout;
    }

    /// The configured bounded-staleness timeout, if any.
    pub fn laggard_timeout(&self) -> Option<Duration> {
        self.laggard_timeout
    }

    /// The sources currently gating the buffered head candidate: unfinished, with a frontier
    /// strictly below the head's score. Empty when nothing is buffered — there is nothing to
    /// gate. These are the streams [`ProgressiveMerger::drain_ready`] is waiting on.
    pub fn blocking_sources(&self) -> Vec<usize> {
        let Some(Reverse(top)) = self.pending.peek() else {
            return Vec::new();
        };
        self.frontiers
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some_and(|f| top.score.total_cmp(&f) == Ordering::Greater))
            .map(|(s, _)| s)
            .collect()
    }

    /// When the earliest currently-blocking source crosses the laggard timeout: the caller's
    /// natural wait bound before re-checking [`ProgressiveMerger::take_timed_out`]. `None`
    /// without a timeout or while nothing is blocked.
    pub fn laggard_deadline(&self) -> Option<Instant> {
        let timeout = self.laggard_timeout?;
        self.blocking_sources()
            .into_iter()
            .map(|s| self.last_progress[s] + timeout)
            .min()
    }

    /// Force-finishes every blocking source whose frontier has not advanced for at least the
    /// laggard timeout as of `now`, returning them in ascending order (empty without a
    /// configured timeout). The explicit `now` keeps tests deterministic — and
    /// `Duration::ZERO` times every blocking source out immediately.
    ///
    /// A returned source behaves exactly as if [`ProgressiveMerger::finish`] had been called:
    /// further offers are rejected and its frontier stops gating the other streams, so the
    /// next [`ProgressiveMerger::drain_ready`] publishes everything only the laggards held
    /// back. The published set may then miss dominators the timed-out sources never emitted —
    /// route the returned sources through the caller's degraded-answer path.
    pub fn take_timed_out(&mut self, now: Instant) -> Vec<usize> {
        let Some(timeout) = self.laggard_timeout else {
            return Vec::new();
        };
        let timed_out: Vec<usize> = self
            .blocking_sources()
            .into_iter()
            .filter(|&s| now.saturating_duration_since(self.last_progress[s]) >= timeout)
            .collect();
        for &s in &timed_out {
            self.frontiers[s] = None;
        }
        timed_out
    }

    /// Number of rows published (confirmed) so far.
    pub fn published(&self) -> usize {
        self.published
    }

    /// True once every source has finished and every buffered candidate was resolved.
    pub fn is_complete(&self) -> bool {
        self.pending.is_empty() && self.frontiers.iter().all(Option::is_none)
    }

    /// Offers the next candidate of `source`'s stream: its id within the source, its query
    /// score, and its raw values in dimension-index order. Scores must be non-decreasing per
    /// source (the stream contract); values must match the merger's dimensionality.
    pub fn offer(
        &mut self,
        source: usize,
        id: PointId,
        score: f64,
        numeric: &[f64],
        nominal: &[ValueId],
    ) -> Result<()> {
        let Some(frontier) = self.frontiers.get_mut(source) else {
            return Err(SkylineError::InvalidArgument(format!(
                "source {source} is outside the merger's {} streams",
                self.frontiers.len()
            )));
        };
        let Some(last) = frontier else {
            return Err(SkylineError::InvalidArgument(format!(
                "source {source} already finished its stream"
            )));
        };
        if score.total_cmp(last) == Ordering::Less {
            return Err(SkylineError::InvalidArgument(format!(
                "source {source} emitted score {score} after {last}; streams must be \
                 non-decreasing in score"
            )));
        }
        if numeric.len() != self.numeric_dims || nominal.len() != self.orders.len() {
            return Err(SkylineError::InvalidArgument(format!(
                "candidate has {} numeric / {} nominal values but the merger expects {} / {}",
                numeric.len(),
                nominal.len(),
                self.numeric_dims,
                self.orders.len()
            )));
        }
        for (j, (&v, order)) in nominal.iter().zip(&self.orders).enumerate() {
            if (v as usize) >= order.cardinality() {
                return Err(SkylineError::InvalidArgument(format!(
                    "nominal value {v} on dimension {j} is outside the compiled order's \
                     cardinality {}",
                    order.cardinality()
                )));
            }
        }
        *frontier = Some(score);
        self.last_progress[source] = Instant::now();
        self.pending.push(Reverse(PendingCandidate {
            score,
            source,
            id,
            numeric: numeric.to_vec(),
            nominal: nominal.to_vec(),
        }));
        Ok(())
    }

    /// Marks `source`'s stream as exhausted: its frontier becomes +∞ and stops gating the
    /// other streams' candidates.
    pub fn finish(&mut self, source: usize) {
        if let Some(f) = self.frontiers.get_mut(source) {
            *f = None;
        }
    }

    /// Resolves every candidate the frontiers allow, appending the newly confirmed
    /// `(source, id)` tags to `out` in ascending global score order. Call after each
    /// [`ProgressiveMerger::offer`] / [`ProgressiveMerger::finish`] batch.
    pub fn drain_ready(&mut self, out: &mut Vec<(usize, PointId)>) {
        let all_finished = self.frontiers.iter().all(Option::is_none);
        let gate = self
            .frontiers
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min);
        while let Some(Reverse(top)) = self.pending.peek() {
            // Resolvable once no unfinished stream can still emit a smaller score. NaN
            // scores sort last under total_cmp and resolve only when everything finished.
            if !all_finished && top.score.total_cmp(&gate) == Ordering::Greater {
                break;
            }
            let Reverse(c) = self.pending.pop().expect("peeked above");
            if !self.dominated_by_published(&c.numeric, &c.nominal) {
                self.published_numerics.extend_from_slice(&c.numeric);
                self.published_nominals.extend_from_slice(&c.nominal);
                self.published += 1;
                out.push((c.source, c.id));
            }
        }
    }

    /// True when some already-published survivor dominates the candidate. Mirrors
    /// [`SkylineMerger`]'s dominance exactly (NaN neither blocks nor establishes dominance).
    fn dominated_by_published(&self, numeric: &[f64], nominal: &[ValueId]) -> bool {
        let nd = self.numeric_dims;
        let md = self.orders.len();
        'survivors: for s in 0..self.published {
            let sn = &self.published_numerics[s * nd..(s + 1) * nd];
            let sm = &self.published_nominals[s * md..(s + 1) * md];
            let mut strict = false;
            for (qv, pv) in sn.iter().zip(numeric) {
                if qv > pv {
                    continue 'survivors;
                }
                strict |= qv < pv;
            }
            for (order, (&qv, &pv)) in self.orders.iter().zip(sm.iter().zip(nominal)) {
                if qv != pv {
                    if !order.strictly_preferred(qv, pv) {
                        continue 'survivors;
                    }
                    strict = true;
                }
            }
            if strict {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bnl;
    use crate::dataset::{Dataset, DatasetBuilder, RowValue};
    use crate::dominance::DominanceContext;
    use crate::kernel::PointBlock;
    use crate::order::{Preference, Template};
    use crate::schema::{Dimension, Schema};
    use std::sync::Arc;

    /// Table 3 of the paper: two numeric + two nominal dimensions, six rows.
    fn table3_data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
            Dimension::nominal_with_labels("airline", ["G", "R", "W"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group, airline) in [
            (1600.0, 4.0, "T", "G"),
            (2400.0, 1.0, "T", "G"),
            (3000.0, 5.0, "H", "G"),
            (3600.0, 4.0, "H", "R"),
            (2400.0, 2.0, "M", "R"),
            (3000.0, 3.0, "M", "W"),
        ] {
            b.push_row([
                RowValue::Num(price),
                RowValue::Num(-class),
                group.into(),
                airline.into(),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    fn query_relation(data: &Dataset, spec: &[(&str, &str)]) -> (CompiledRelation, Preference) {
        let template = Template::empty(data.schema());
        let pref = Preference::parse(data.schema(), spec.to_vec()).unwrap();
        let rel = CompiledRelation::for_query(
            Arc::new(PointBlock::new(data)),
            data.schema(),
            &template,
            &pref,
        )
        .unwrap();
        (rel, pref)
    }

    fn oracle(data: &Dataset, pref: &Preference) -> Vec<PointId> {
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_query(data, &template, pref).unwrap();
        let mut sky = bnl::skyline(&ctx);
        sky.sort_unstable();
        sky
    }

    #[test]
    fn merge_of_every_two_way_split_is_the_global_skyline() {
        let data = table3_data();
        let (rel, pref) = query_relation(&data, &[("hotel-group", "T < *"), ("airline", "G < *")]);
        let expected = oracle(&data, &pref);
        let all: Vec<PointId> = data.point_ids().collect();
        for cut in 0..=all.len() {
            let (left, right) = all.split_at(cut);
            // Per-fragment skylines first (the operator's contract), then the merge.
            let ctx =
                DominanceContext::for_query(&data, &Template::empty(data.schema()), &pref).unwrap();
            let left_sky = bnl::skyline_of(&ctx, left);
            let right_sky = bnl::skyline_of(&ctx, right);
            let mut merged = merge_skylines(&rel, &[&left_sky, &right_sky]);
            merged.sort_unstable();
            assert_eq!(merged, expected, "split at {cut}");
        }
    }

    #[test]
    fn merge_preserves_input_order() {
        let data = table3_data();
        let (rel, _) = query_relation(&data, &[("hotel-group", "T < *")]);
        // Feed raw fragments (each a singleton, trivially its own skyline) in a fixed order:
        // the survivors must come back in that order, not sorted.
        let fragments: Vec<Vec<PointId>> =
            (0..data.len() as PointId).rev().map(|p| vec![p]).collect();
        let views: Vec<&[PointId]> = fragments.iter().map(Vec::as_slice).collect();
        let merged = merge_skylines(&rel, &views);
        let mut sorted_back = merged.clone();
        sorted_back.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(
            merged, sorted_back,
            "survivors stay in (descending) feed order"
        );
    }

    #[test]
    fn merger_matches_single_block_merge_across_sources() {
        let data = table3_data();
        let template = Template::empty(data.schema());
        let pref = Preference::parse(
            data.schema(),
            [("hotel-group", "T < *"), ("airline", "G < *")],
        )
        .unwrap();
        let orders: Vec<CompiledOrder> = template
            .effective_orders(data.schema(), &pref)
            .unwrap()
            .iter()
            .map(CompiledOrder::compile)
            .collect();

        // Split the rows across two "shards" (even/odd), push each shard's local skyline.
        let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
        let shard_rows: [Vec<PointId>; 2] = [
            data.point_ids().filter(|p| p % 2 == 0).collect(),
            data.point_ids().filter(|p| p % 2 == 1).collect(),
        ];
        let mut merger = SkylineMerger::new(orders, data.schema().numeric_count());
        for (s, rows) in shard_rows.iter().enumerate() {
            for &p in &bnl::skyline_of(&ctx, rows) {
                let numeric: Vec<f64> = (0..data.schema().numeric_count())
                    .map(|j| data.numeric(p, j))
                    .collect();
                let nominal: Vec<ValueId> = (0..data.schema().nominal_count())
                    .map(|j| data.nominal(p, j))
                    .collect();
                merger.push(s, p, &numeric, &nominal).unwrap();
            }
        }
        assert!(!merger.is_empty());
        let mut global: Vec<PointId> = merger.merge().into_iter().map(|(_, p)| p).collect();
        global.sort_unstable();
        assert_eq!(global, oracle(&data, &pref));
        assert!(merger.is_empty(), "merge drains the candidates");
    }

    #[test]
    fn value_identical_candidates_across_sources_both_survive() {
        let orders = vec![CompiledOrder::compile(&crate::order::PartialOrder::empty(
            2,
        ))];
        let mut merger = SkylineMerger::new(orders, 1);
        merger.push(0, 7, &[1.0], &[0]).unwrap();
        merger.push(1, 3, &[1.0], &[0]).unwrap();
        assert_eq!(merger.merge(), vec![(0, 7), (1, 3)]);
    }

    #[test]
    fn merger_rejects_mismatched_rows() {
        let orders = vec![CompiledOrder::compile(&crate::order::PartialOrder::empty(
            2,
        ))];
        let mut merger = SkylineMerger::new(orders, 2);
        assert!(merger.push(0, 0, &[1.0], &[0]).is_err(), "numeric arity");
        assert!(
            merger.push(0, 0, &[1.0, 2.0], &[]).is_err(),
            "nominal arity"
        );
        assert!(
            merger.push(0, 0, &[1.0, 2.0], &[5]).is_err(),
            "value outside the order's domain"
        );
        assert_eq!(merger.len(), 0);
    }

    #[test]
    fn progressive_merger_matches_batch_merger_and_never_retracts() {
        use crate::score::ScoreFn;
        let data = table3_data();
        let template = Template::empty(data.schema());
        let pref = Preference::parse(
            data.schema(),
            [("hotel-group", "T < *"), ("airline", "G < *")],
        )
        .unwrap();
        let orders: Vec<CompiledOrder> = template
            .effective_orders(data.schema(), &pref)
            .unwrap()
            .iter()
            .map(CompiledOrder::compile)
            .collect();
        let score = ScoreFn::for_preference(data.schema(), &pref).unwrap();
        let ctx = DominanceContext::for_query(&data, &template, &pref).unwrap();
        let shard_rows: [Vec<PointId>; 2] = [
            data.point_ids().filter(|p| p % 2 == 0).collect(),
            data.point_ids().filter(|p| p % 2 == 1).collect(),
        ];
        // Per-shard streams: the shard skyline in ascending score order.
        let streams: Vec<Vec<PointId>> = shard_rows
            .iter()
            .map(|rows| score.sort_by_score(&data, &bnl::skyline_of(&ctx, rows)))
            .collect();
        let row_values = |p: PointId| {
            let numeric: Vec<f64> = (0..data.schema().numeric_count())
                .map(|j| data.numeric(p, j))
                .collect();
            let nominal: Vec<ValueId> = (0..data.schema().nominal_count())
                .map(|j| data.nominal(p, j))
                .collect();
            (numeric, nominal)
        };

        let mut merger = ProgressiveMerger::new(orders.clone(), data.schema().numeric_count(), 2);
        let mut confirmed: Vec<(usize, PointId)> = Vec::new();
        let mut positions = [0usize; 2];
        // Interleave the streams one row at a time, draining after every offer; nothing a
        // drain publishes may ever be contradicted later.
        loop {
            let mut progressed = false;
            for s in 0..2 {
                if positions[s] < streams[s].len() {
                    let p = streams[s][positions[s]];
                    positions[s] += 1;
                    let (numeric, nominal) = row_values(p);
                    merger
                        .offer(s, p, score.score(&data, p), &numeric, &nominal)
                        .unwrap();
                    progressed = true;
                }
                let before = confirmed.len();
                merger.drain_ready(&mut confirmed);
                // Confirmed rows arrive in non-decreasing global score order.
                for w in confirmed[before.saturating_sub(1)..].windows(2) {
                    assert!(score.score(&data, w[0].1) <= score.score(&data, w[1].1));
                }
            }
            if !progressed {
                break;
            }
        }
        merger.finish(0);
        merger.finish(1);
        merger.drain_ready(&mut confirmed);
        assert!(merger.is_complete());
        assert_eq!(merger.published(), confirmed.len());

        // The final set equals the batch SkylineMerger over the same candidates.
        let mut batch = SkylineMerger::new(orders, data.schema().numeric_count());
        for (s, stream) in streams.iter().enumerate() {
            for &p in stream {
                let (numeric, nominal) = row_values(p);
                batch.push(s, p, &numeric, &nominal).unwrap();
            }
        }
        let mut expected = batch.merge();
        expected.sort_unstable();
        let mut got = confirmed.clone();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn progressive_merger_gates_on_the_slowest_frontier() {
        let orders = vec![CompiledOrder::compile(&crate::order::PartialOrder::empty(
            2,
        ))];
        let mut merger = ProgressiveMerger::new(orders, 1, 2);
        let mut out = Vec::new();
        // Source 0 emits a row at score 5; source 1 has not reached score 5 yet, so the row
        // must stay pending — source 1 could still emit a dominator below 5.
        merger.offer(0, 10, 5.0, &[4.0], &[0]).unwrap();
        merger.drain_ready(&mut out);
        assert!(out.is_empty(), "gated by source 1's frontier");
        // Source 1 advances past score 5 with a non-dominating row: both resolve.
        merger.offer(1, 20, 6.0, &[6.0], &[1]).unwrap();
        merger.drain_ready(&mut out);
        assert_eq!(out, vec![(0, 10)]);
        merger.finish(0);
        merger.drain_ready(&mut out);
        assert_eq!(out, vec![(0, 10), (1, 20)]);
        assert!(!merger.is_complete());
        merger.finish(1);
        assert!(merger.is_complete());
    }

    #[test]
    fn progressive_merger_eliminates_across_sources() {
        let orders = vec![CompiledOrder::compile(&crate::order::PartialOrder::empty(
            2,
        ))];
        let mut merger = ProgressiveMerger::new(orders, 1, 2);
        let mut out = Vec::new();
        // (1.0) from source 0 dominates (2.0) from source 1; scores follow values here.
        merger.offer(0, 1, 1.0, &[1.0], &[0]).unwrap();
        merger.offer(1, 2, 2.0, &[2.0], &[0]).unwrap();
        merger.finish(0);
        merger.finish(1);
        merger.drain_ready(&mut out);
        assert_eq!(out, vec![(0, 1)], "dominated row never published");
        // Contract violations are rejected.
        let mut m = ProgressiveMerger::new(
            vec![CompiledOrder::compile(&crate::order::PartialOrder::empty(
                2,
            ))],
            1,
            1,
        );
        m.offer(0, 1, 3.0, &[1.0], &[0]).unwrap();
        assert!(
            m.offer(0, 2, 2.0, &[1.0], &[0]).is_err(),
            "score regression"
        );
        assert!(m.offer(5, 1, 4.0, &[1.0], &[0]).is_err(), "unknown source");
        m.finish(0);
        assert!(
            m.offer(0, 3, 4.0, &[1.0], &[0]).is_err(),
            "offer after finish"
        );
    }

    #[test]
    fn laggard_timeout_releases_rows_gated_by_a_stalled_source() {
        let orders = vec![CompiledOrder::compile(&crate::order::PartialOrder::empty(
            2,
        ))];
        let mut merger = ProgressiveMerger::new(orders, 1, 2);
        let mut out = Vec::new();
        merger.offer(0, 10, 5.0, &[4.0], &[0]).unwrap();
        merger.drain_ready(&mut out);
        assert!(out.is_empty(), "source 1's frontier gates the row");
        // Without a timeout nothing ever times out, and the deadline is absent.
        assert!(merger.take_timed_out(Instant::now()).is_empty());
        assert_eq!(merger.laggard_deadline(), None);
        // A zero timeout makes every blocking source an immediate laggard.
        merger.set_laggard_timeout(Some(Duration::ZERO));
        assert_eq!(merger.blocking_sources(), vec![1]);
        assert!(merger.laggard_deadline().is_some());
        assert_eq!(merger.take_timed_out(Instant::now()), vec![1]);
        merger.drain_ready(&mut out);
        assert_eq!(out, vec![(0, 10)], "the gated row publishes");
        // The timed-out source behaves exactly like a finished one.
        assert!(merger.offer(1, 20, 6.0, &[6.0], &[1]).is_err());
        merger.finish(0);
        merger.drain_ready(&mut out);
        assert!(merger.is_complete());
    }

    #[test]
    fn responsive_sources_are_never_timed_out() {
        let orders = vec![CompiledOrder::compile(&crate::order::PartialOrder::empty(
            2,
        ))];
        let mut merger = ProgressiveMerger::new(orders, 1, 2);
        merger.set_laggard_timeout(Some(Duration::from_secs(3600)));
        merger.offer(0, 10, 5.0, &[4.0], &[0]).unwrap();
        // Source 1 is blocking but nowhere near an hour stale.
        assert_eq!(merger.blocking_sources(), vec![1]);
        assert!(merger.take_timed_out(Instant::now()).is_empty());
        assert!(merger.laggard_deadline().unwrap() > Instant::now());
        // Nothing pending ⇒ nothing blocked ⇒ nothing to time out, even at +∞ staleness.
        let mut out = Vec::new();
        merger.offer(1, 20, 6.0, &[6.0], &[1]).unwrap();
        merger.drain_ready(&mut out);
        assert_eq!(out, vec![(0, 10)]);
        merger.set_laggard_timeout(Some(Duration::ZERO));
        // Source 0 gates (1, 20) at score 6: only source 0 may be returned, source 1 stays.
        assert_eq!(merger.take_timed_out(Instant::now()), vec![0]);
        merger.drain_ready(&mut out);
        assert_eq!(out, vec![(0, 10), (1, 20)]);
        assert!(merger.blocking_sources().is_empty());
        assert!(merger.take_timed_out(Instant::now()).is_empty());
    }

    #[test]
    fn nan_values_neither_block_nor_establish_dominance() {
        let orders: Vec<CompiledOrder> = Vec::new();
        let mut merger = SkylineMerger::new(orders, 2);
        // (NaN, 1) vs (2, 1): no strict edge either way — both survive.
        merger.push(0, 0, &[f64::NAN, 1.0], &[]).unwrap();
        merger.push(0, 1, &[2.0, 1.0], &[]).unwrap();
        assert_eq!(merger.merge(), vec![(0, 0), (0, 1)]);
    }
}
