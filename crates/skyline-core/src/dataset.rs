//! Columnar dataset storage.
//!
//! Datasets are stored column-wise: one `Vec<f64>` per numeric dimension and one
//! `Vec<ValueId>` per nominal dimension. Skyline evaluation is dominated by pairwise
//! dominance tests that touch every dimension of two rows, and a columnar layout keeps
//! those accesses branch-light and cache-friendly, while nominal columns stay compact
//! (`u16` per cell).

use crate::error::{Result, SkylineError};
use crate::schema::{DimensionKind, Schema};
use crate::value::{PointId, ValueId};

/// A single cell value used when building datasets row by row.
#[derive(Debug, Clone, PartialEq)]
pub enum RowValue {
    /// Value for a numeric dimension (smaller is better).
    Num(f64),
    /// Value for a nominal dimension, by label. New labels are interned into the domain.
    Label(String),
    /// Value for a nominal dimension, by pre-interned value id.
    Id(ValueId),
}

impl From<f64> for RowValue {
    fn from(v: f64) -> Self {
        RowValue::Num(v)
    }
}

impl From<&str> for RowValue {
    fn from(v: &str) -> Self {
        RowValue::Label(v.to_string())
    }
}

impl From<String> for RowValue {
    fn from(v: String) -> Self {
        RowValue::Label(v)
    }
}

/// Immutable, columnar dataset.
///
/// Rows are addressed by [`PointId`] in insertion order. Numeric columns are indexed by the
/// *numeric index* (position among numeric dimensions) and nominal columns by the *nominal
/// index* (position among nominal dimensions), mirroring [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    numeric_cols: Vec<Vec<f64>>,
    nominal_cols: Vec<Vec<ValueId>>,
    len: usize,
}

impl Dataset {
    /// Creates an empty dataset for `schema`.
    pub fn empty(schema: Schema) -> Self {
        let numeric_cols = vec![Vec::new(); schema.numeric_count()];
        let nominal_cols = vec![Vec::new(); schema.nominal_count()];
        Self {
            schema,
            numeric_cols,
            nominal_cols,
            len: 0,
        }
    }

    /// Builds a dataset directly from pre-assembled columns.
    ///
    /// `numeric_cols[j]` must correspond to the `j`-th numeric dimension of `schema` and
    /// `nominal_cols[j]` to the `j`-th nominal dimension; all columns must share one length.
    pub fn from_columns(
        schema: Schema,
        numeric_cols: Vec<Vec<f64>>,
        nominal_cols: Vec<Vec<ValueId>>,
    ) -> Result<Self> {
        if numeric_cols.len() != schema.numeric_count()
            || nominal_cols.len() != schema.nominal_count()
        {
            return Err(SkylineError::RowShapeMismatch {
                expected: schema.arity(),
                got: numeric_cols.len() + nominal_cols.len(),
            });
        }
        let len = numeric_cols
            .first()
            .map(Vec::len)
            .or_else(|| nominal_cols.first().map(Vec::len))
            .unwrap_or(0);
        for col in &numeric_cols {
            if col.len() != len {
                return Err(SkylineError::InvalidArgument(
                    "ragged numeric columns".into(),
                ));
            }
        }
        for (j, col) in nominal_cols.iter().enumerate() {
            if col.len() != len {
                return Err(SkylineError::InvalidArgument(
                    "ragged nominal columns".into(),
                ));
            }
            let card = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            if let Some(&v) = col.iter().find(|&&v| (v as usize) >= card) {
                let name = schema
                    .dimension(schema.schema_index_of_nominal(j).unwrap_or(0))
                    .map(|d| d.name().to_string())
                    .unwrap_or_default();
                return Err(SkylineError::ValueOutOfDomain {
                    dimension: name,
                    value: v as u32,
                    cardinality: card,
                });
            }
        }
        Ok(Self {
            schema,
            numeric_cols,
            nominal_cols,
            len,
        })
    }

    /// The dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (`N` / `|D|` in the paper).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterator over all point ids `0..len`.
    pub fn point_ids(&self) -> impl Iterator<Item = PointId> + '_ {
        0..self.len as PointId
    }

    /// Value of row `p` in the `j`-th numeric dimension.
    #[inline]
    pub fn numeric(&self, p: PointId, numeric_index: usize) -> f64 {
        self.numeric_cols[numeric_index][p as usize]
    }

    /// Value id of row `p` in the `j`-th nominal dimension.
    #[inline]
    pub fn nominal(&self, p: PointId, nominal_index: usize) -> ValueId {
        self.nominal_cols[nominal_index][p as usize]
    }

    /// The whole `j`-th numeric column.
    pub fn numeric_column(&self, numeric_index: usize) -> &[f64] {
        &self.numeric_cols[numeric_index]
    }

    /// The whole `j`-th nominal column.
    pub fn nominal_column(&self, nominal_index: usize) -> &[ValueId] {
        &self.nominal_cols[nominal_index]
    }

    /// Label of row `p`'s value in the `j`-th nominal dimension (for display).
    pub fn nominal_label(&self, p: PointId, nominal_index: usize) -> &str {
        let id = self.nominal(p, nominal_index);
        self.schema
            .nominal_domain(nominal_index)
            .and_then(|d| d.label(id))
            .unwrap_or("<unknown>")
    }

    /// Appends a row given values for the numeric dimensions (in numeric-index order) and
    /// value ids for the nominal dimensions (in nominal-index order). Returns the new row id.
    pub fn push_row_ids(&mut self, numeric: &[f64], nominal: &[ValueId]) -> Result<PointId> {
        if numeric.len() != self.schema.numeric_count()
            || nominal.len() != self.schema.nominal_count()
        {
            return Err(SkylineError::RowShapeMismatch {
                expected: self.schema.arity(),
                got: numeric.len() + nominal.len(),
            });
        }
        for (j, &v) in nominal.iter().enumerate() {
            let card = self.schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            if (v as usize) >= card {
                let name = self
                    .schema
                    .dimension(self.schema.schema_index_of_nominal(j).unwrap_or(0))
                    .map(|d| d.name().to_string())
                    .unwrap_or_default();
                return Err(SkylineError::ValueOutOfDomain {
                    dimension: name,
                    value: v as u32,
                    cardinality: card,
                });
            }
        }
        for (col, &v) in self.numeric_cols.iter_mut().zip(numeric) {
            col.push(v);
        }
        for (col, &v) in self.nominal_cols.iter_mut().zip(nominal) {
            col.push(v);
        }
        let id = self.len as PointId;
        self.len += 1;
        Ok(id)
    }

    /// Builds a new dataset holding exactly the rows of `keep`, renumbered in the given
    /// order — the dataset-level half of physical compaction (the block-level half is
    /// [`crate::kernel::PointBlock::compacted`], whose remap's surviving old ids are the
    /// natural `keep` list).
    ///
    /// Out-of-range ids panic (the caller derives `keep` from this dataset's own liveness, so
    /// a bad id is a logic error, not input validation).
    pub fn retained(&self, keep: &[PointId]) -> Self {
        let numeric_cols = self
            .numeric_cols
            .iter()
            .map(|col| keep.iter().map(|&p| col[p as usize]).collect())
            .collect();
        let nominal_cols = self
            .nominal_cols
            .iter()
            .map(|col| keep.iter().map(|&p| col[p as usize]).collect())
            .collect();
        Self {
            schema: self.schema.clone(),
            numeric_cols,
            nominal_cols,
            len: keep.len(),
        }
    }

    /// Counts how many rows carry each value of the `j`-th nominal dimension.
    ///
    /// Index `v` of the returned vector is the frequency of value id `v`. Used to pick the
    /// paper's default template ("most frequent value preferred") and the popular values kept
    /// by the truncated IPO tree.
    pub fn nominal_value_frequencies(&self, nominal_index: usize) -> Vec<usize> {
        let card = self
            .schema
            .nominal_domain(nominal_index)
            .map_or(0, |d| d.cardinality());
        let mut freq = vec![0usize; card];
        for &v in &self.nominal_cols[nominal_index] {
            freq[v as usize] += 1;
        }
        freq
    }

    /// The value ids of the `j`-th nominal dimension sorted by decreasing frequency.
    pub fn values_by_frequency(&self, nominal_index: usize) -> Vec<ValueId> {
        let freq = self.nominal_value_frequencies(nominal_index);
        let mut ids: Vec<ValueId> = (0..freq.len() as ValueId).collect();
        ids.sort_by_key(|&v| std::cmp::Reverse(freq[v as usize]));
        ids
    }

    /// Approximate in-memory footprint of the raw data in bytes (used for the storage plots).
    pub fn approximate_bytes(&self) -> usize {
        self.numeric_cols
            .iter()
            .map(|c| c.len() * std::mem::size_of::<f64>())
            .sum::<usize>()
            + self
                .nominal_cols
                .iter()
                .map(|c| c.len() * std::mem::size_of::<ValueId>())
                .sum::<usize>()
    }
}

/// Row-oriented builder that accepts labels and interns them into the schema domains.
///
/// Use this for hand-written examples and tests; bulk generators should assemble columns and
/// call [`Dataset::from_columns`] instead.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    schema: Schema,
    rows_numeric: Vec<Vec<f64>>,
    rows_nominal: Vec<Vec<ValueId>>,
}

impl DatasetBuilder {
    /// Starts building a dataset with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows_numeric: Vec::new(),
            rows_nominal: Vec::new(),
        }
    }

    /// Appends one row. `values` must supply one [`RowValue`] per schema dimension, in schema
    /// order. Nominal labels that are not yet part of the domain are interned on the fly.
    pub fn push_row<I, V>(&mut self, values: I) -> Result<&mut Self>
    where
        I: IntoIterator<Item = V>,
        V: Into<RowValue>,
    {
        let values: Vec<RowValue> = values.into_iter().map(Into::into).collect();
        if values.len() != self.schema.arity() {
            return Err(SkylineError::RowShapeMismatch {
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        let mut numeric = Vec::with_capacity(self.schema.numeric_count());
        let mut nominal = Vec::with_capacity(self.schema.nominal_count());
        for (i, value) in values.into_iter().enumerate() {
            let dim_name = self
                .schema
                .dimension(i)
                .map(|d| d.name().to_string())
                .unwrap_or_default();
            let kind_is_numeric = self
                .schema
                .dimension(i)
                .map(|d| matches!(d.kind(), DimensionKind::Numeric))
                .unwrap_or(false);
            match (value, kind_is_numeric) {
                (RowValue::Num(v), true) => numeric.push(v),
                (RowValue::Label(label), false) => {
                    let dim = self.schema.dimension_mut(i).expect("dimension exists");
                    let id = dim.domain_mut().expect("nominal dimension").intern(label);
                    nominal.push(id);
                }
                (RowValue::Id(id), false) => nominal.push(id),
                (RowValue::Num(_), false) => {
                    return Err(SkylineError::KindMismatch {
                        dimension: dim_name,
                        detail: "numeric value supplied for a nominal dimension".into(),
                    })
                }
                (v, true) => {
                    return Err(SkylineError::KindMismatch {
                        dimension: dim_name,
                        detail: format!("nominal value {v:?} supplied for a numeric dimension"),
                    })
                }
            }
        }
        self.rows_numeric.push(numeric);
        self.rows_nominal.push(nominal);
        Ok(self)
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows_numeric.len()
    }

    /// True when no rows have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.rows_numeric.is_empty()
    }

    /// Finalizes the builder into a columnar [`Dataset`].
    pub fn build(self) -> Result<Dataset> {
        let n = self.rows_numeric.len();
        let mut numeric_cols = vec![Vec::with_capacity(n); self.schema.numeric_count()];
        let mut nominal_cols = vec![Vec::with_capacity(n); self.schema.nominal_count()];
        for row in &self.rows_numeric {
            for (j, &v) in row.iter().enumerate() {
                numeric_cols[j].push(v);
            }
        }
        for row in &self.rows_nominal {
            for (j, &v) in row.iter().enumerate() {
                nominal_cols[j].push(v);
            }
        }
        Dataset::from_columns(self.schema, numeric_cols, nominal_cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Dimension;

    fn schema() -> Schema {
        Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("group", Vec::<String>::new()),
        ])
        .unwrap()
    }

    #[test]
    fn builder_interns_labels_and_builds_columns() {
        let mut b = DatasetBuilder::new(schema());
        b.push_row([
            RowValue::Num(1600.0),
            RowValue::Num(-4.0),
            RowValue::Label("T".into()),
        ])
        .unwrap();
        b.push_row([
            RowValue::Num(2400.0),
            RowValue::Num(-1.0),
            RowValue::Label("T".into()),
        ])
        .unwrap();
        b.push_row([
            RowValue::Num(3000.0),
            RowValue::Num(-5.0),
            RowValue::Label("H".into()),
        ])
        .unwrap();
        let d = b.build().unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.numeric(0, 0), 1600.0);
        assert_eq!(d.numeric(2, 1), -5.0);
        assert_eq!(d.nominal(0, 0), d.nominal(1, 0));
        assert_ne!(d.nominal(0, 0), d.nominal(2, 0));
        assert_eq!(d.nominal_label(2, 0), "H");
    }

    #[test]
    fn builder_rejects_bad_arity_and_kinds() {
        let mut b = DatasetBuilder::new(schema());
        assert!(matches!(
            b.push_row([RowValue::Num(1.0)]),
            Err(SkylineError::RowShapeMismatch {
                expected: 3,
                got: 1
            })
        ));
        assert!(matches!(
            b.push_row([
                RowValue::Num(1.0),
                RowValue::Label("x".into()),
                RowValue::Label("T".into())
            ]),
            Err(SkylineError::KindMismatch { .. })
        ));
        assert!(matches!(
            b.push_row([RowValue::Num(1.0), RowValue::Num(2.0), RowValue::Num(3.0)]),
            Err(SkylineError::KindMismatch { .. })
        ));
    }

    #[test]
    fn from_columns_validates_shape() {
        let schema = schema();
        let err = Dataset::from_columns(schema.clone(), vec![vec![1.0]], vec![]).unwrap_err();
        assert!(matches!(err, SkylineError::RowShapeMismatch { .. }));

        let err = Dataset::from_columns(
            schema.clone(),
            vec![vec![1.0], vec![2.0, 3.0]],
            vec![vec![0]],
        )
        .unwrap_err();
        assert!(matches!(err, SkylineError::InvalidArgument(_)));
    }

    #[test]
    fn from_columns_validates_domain() {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal_with_labels("g", ["a", "b"]),
        ])
        .unwrap();
        let err = Dataset::from_columns(schema, vec![vec![1.0]], vec![vec![5]]).unwrap_err();
        assert!(matches!(
            err,
            SkylineError::ValueOutOfDomain { value: 5, .. }
        ));
    }

    #[test]
    fn push_row_ids_appends() {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal_with_labels("g", ["a", "b"]),
        ])
        .unwrap();
        let mut d = Dataset::empty(schema);
        assert_eq!(d.push_row_ids(&[1.0], &[1]).unwrap(), 0);
        assert_eq!(d.push_row_ids(&[2.0], &[0]).unwrap(), 1);
        assert!(d.push_row_ids(&[2.0], &[7]).is_err());
        assert!(d.push_row_ids(&[2.0, 1.0], &[0]).is_err());
        assert_eq!(d.len(), 2);
        assert_eq!(d.nominal(0, 0), 1);
    }

    #[test]
    fn retained_renumbers_rows_in_order() {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal_with_labels("g", ["a", "b", "c"]),
        ])
        .unwrap();
        let d = Dataset::from_columns(
            schema,
            vec![vec![1.0, 2.0, 3.0, 4.0]],
            vec![vec![0, 1, 2, 1]],
        )
        .unwrap();
        let kept = d.retained(&[0, 2, 3]);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept.numeric_column(0), &[1.0, 3.0, 4.0]);
        assert_eq!(kept.nominal_column(0), &[0, 2, 1]);
        assert_eq!(kept.schema(), d.schema());
        assert!(d.retained(&[]).is_empty());
    }

    #[test]
    fn frequencies_and_popular_order() {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal_with_labels("g", ["a", "b", "c"]),
        ])
        .unwrap();
        let d = Dataset::from_columns(schema, vec![vec![0.0; 6]], vec![vec![1, 1, 1, 2, 2, 0]])
            .unwrap();
        assert_eq!(d.nominal_value_frequencies(0), vec![1, 3, 2]);
        assert_eq!(d.values_by_frequency(0), vec![1, 2, 0]);
    }

    #[test]
    fn approximate_bytes_counts_cells() {
        let schema = Schema::new(vec![
            Dimension::numeric("x"),
            Dimension::nominal_with_labels("g", ["a"]),
        ])
        .unwrap();
        let d = Dataset::from_columns(schema, vec![vec![0.0; 10]], vec![vec![0; 10]]).unwrap();
        assert_eq!(d.approximate_bytes(), 10 * 8 + 10 * 2);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::empty(schema());
        assert!(d.is_empty());
        assert_eq!(d.point_ids().count(), 0);
    }
}
