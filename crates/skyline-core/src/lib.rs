//! # skyline-core
//!
//! Core building blocks for *skyline querying with variable user preferences on
//! nominal attributes* (Wong, Fu, Pei, Ho, Wong, Liu — arXiv:0710.2604).
//!
//! A dataset mixes **numeric** dimensions (universal total order, smaller is better)
//! with **nominal** dimensions that carry *no* predefined order. Each user query supplies
//! an [`order::ImplicitPreference`] per nominal dimension — `v1 ≺ v2 ≺ … ≺ vx ≺ *` — and the
//! skyline must be computed under the strict partial order induced by that preference.
//!
//! This crate provides:
//!
//! * the data model: [`Schema`], [`Dataset`], nominal value dictionaries ([`NominalDomain`]);
//! * preference machinery: general strict [`order::PartialOrder`]s, the restricted
//!   [`order::ImplicitPreference`] form used by the paper, [`order::Preference`] profiles and
//!   [`order::Template`]s shared by all users;
//! * dominance testing ([`DominanceContext`]) and the monotone scoring function used by the
//!   SFS family ([`score::ScoreFn`]);
//! * the compiled dominance kernel ([`kernel`]): query-compiled closure bitmasks over a
//!   cache-friendly row-major point layout, behind the shared [`dominance::Dominance`] trait;
//! * baseline full-dataset skyline algorithms: block-nested-loop ([`algo::bnl`]) and
//!   sort-first-skyline ([`algo::sfs`], the paper's **SFS-D** baseline);
//! * minimal disqualifying conditions ([`mdc`]) used by the IPO-tree construction;
//! * a compact [`bitset::BitSet`] shared by the partial-order closure and the bitmap
//!   IPO-tree representation;
//! * skyline statistics reported in the paper's figures ([`stats`]).
//!
//! Higher-level crates build on this one: `skyline-ipo` (IPO-Tree search), `skyline-adaptive`
//! (Adaptive SFS) and `skyline` (facade + hybrid engine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod bitset;
pub mod dataset;
pub mod deadline;
pub mod dominance;
pub mod error;
pub mod kernel;
mod lanes;
pub mod mdc;
pub mod order;
pub mod schema;
pub mod score;
pub mod snapshot;
pub mod stats;
pub mod value;

pub use algo::{merge_skylines, CollectSink, ProgressiveMerger, ResultSink, SkylineMerger};
pub use bitset::BitSet;
pub use dataset::{Dataset, DatasetBuilder, RowValue};
pub use deadline::{CancelToken, Deadline, DEADLINE_CHECK_INTERVAL};
pub use dominance::{DomRelation, Dominance, DominanceContext};
pub use error::{Result, SkylineError};
pub use kernel::{
    kernel_mode, window_peek_override, with_kernel_mode, with_window_peek, CompiledOrder,
    CompiledRelation, DatasetEpoch, DenseWindow, KernelMode, PointBlock, RowIdRemap,
};
pub use order::{CanonicalPreference, ImplicitPreference, PartialOrder, Preference, Template};
pub use schema::{Dimension, DimensionKind, Schema};
pub use snapshot::{SnapshotBuilder, SnapshotError, SnapshotView};
pub use value::{NominalDomain, PointId, ValueId};
