//! Error type shared by every crate of the workspace.

use std::fmt;

/// Convenient result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, SkylineError>;

/// Errors produced while building schemas, datasets, preference orders or running queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkylineError {
    /// A dimension name was used twice in a schema.
    DuplicateDimension(String),
    /// A dimension name or index does not exist in the schema.
    UnknownDimension(String),
    /// A nominal value is not part of the dimension's domain.
    UnknownValue {
        /// Dimension the lookup was performed on.
        dimension: String,
        /// The value that could not be resolved.
        value: String,
    },
    /// A row pushed into a [`crate::DatasetBuilder`] does not match the schema arity or kinds.
    RowShapeMismatch {
        /// Expected number of columns (schema arity).
        expected: usize,
        /// Number of columns supplied.
        got: usize,
    },
    /// A numeric value was supplied for a nominal dimension or vice versa.
    KindMismatch {
        /// Dimension the value was destined for.
        dimension: String,
        /// Human readable description of the mismatch.
        detail: String,
    },
    /// Adding the requested pairs to a partial order would create a cycle
    /// (the relation would no longer be a strict partial order).
    CyclicOrder {
        /// Dimension on which the cycle was detected.
        dimension: String,
    },
    /// Two orders are not conflict-free (Definition 1 of the paper): one contains `(u, v)`
    /// while the other contains `(v, u)`.
    ConflictingOrders {
        /// Dimension on which the conflict was detected.
        dimension: String,
    },
    /// A preference refers to a value id outside the domain of its dimension.
    ValueOutOfDomain {
        /// Dimension index (within the nominal dimensions).
        dimension: String,
        /// Offending value id.
        value: u32,
        /// Domain cardinality.
        cardinality: usize,
    },
    /// A query preference is not a refinement of the template it is evaluated against.
    NotARefinement {
        /// Dimension on which refinement fails.
        dimension: String,
    },
    /// An implicit preference lists the same value twice.
    DuplicatePreferenceValue {
        /// Dimension of the preference.
        dimension: String,
        /// The duplicated value id.
        value: u32,
    },
    /// A query lists a nominal value that the (truncated) materialized structure does not
    /// cover; the caller should fall back to a non-materialized algorithm.
    NotMaterialized {
        /// Dimension of the missing value.
        dimension: String,
        /// The value id that is not materialized.
        value: u32,
    },
    /// A caller expected a dataset at one mutation epoch but the engine has moved on (rows
    /// were inserted or deleted in between); any derived result would be stale.
    EpochMismatch {
        /// The epoch the caller computed against.
        expected: u64,
        /// The engine's current epoch.
        actual: u64,
    },
    /// Parsing a textual preference such as `"T < M < *"` failed.
    ParseError(String),
    /// The operation requires a non-empty dataset.
    EmptyDataset,
    /// The request's [`crate::Deadline`] expired (or its cancel token fired) before the
    /// answer was complete. The partial work is discarded; nothing partial is ever cached.
    DeadlineExceeded,
    /// The service's bounded admission queue was full and shed this request (reject-newest
    /// load shedding). Retrying after backoff is safe — no work was started.
    Overloaded,
    /// A dataset shard is quarantined (a panic was isolated to it) or failed mid-query, and
    /// the degradation policy does not tolerate answering without it.
    ShardUnavailable {
        /// Index of the unavailable shard.
        shard: usize,
    },
    /// A persistent snapshot could not be written, parsed or decoded (see
    /// [`crate::snapshot::SnapshotError`], which carries the structured cause). The engine
    /// treats this as "no usable snapshot" — it falls back to a full preprocess, never to a
    /// partially-loaded structure.
    Snapshot(String),
    /// Catch-all for invariant violations that indicate a bug in the caller.
    InvalidArgument(String),
}

impl fmt::Display for SkylineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkylineError::DuplicateDimension(name) => {
                write!(f, "duplicate dimension name `{name}` in schema")
            }
            SkylineError::UnknownDimension(name) => write!(f, "unknown dimension `{name}`"),
            SkylineError::UnknownValue { dimension, value } => {
                write!(f, "value `{value}` is not in the domain of dimension `{dimension}`")
            }
            SkylineError::RowShapeMismatch { expected, got } => {
                write!(f, "row has {got} columns but the schema has {expected} dimensions")
            }
            SkylineError::KindMismatch { dimension, detail } => {
                write!(f, "kind mismatch on dimension `{dimension}`: {detail}")
            }
            SkylineError::CyclicOrder { dimension } => {
                write!(f, "adding these pairs creates a cycle on dimension `{dimension}`")
            }
            SkylineError::ConflictingOrders { dimension } => {
                write!(f, "orders conflict on dimension `{dimension}` (not conflict-free)")
            }
            SkylineError::ValueOutOfDomain { dimension, value, cardinality } => write!(
                f,
                "value id {value} is outside the domain of `{dimension}` (cardinality {cardinality})"
            ),
            SkylineError::NotARefinement { dimension } => write!(
                f,
                "query preference on dimension `{dimension}` does not refine the template"
            ),
            SkylineError::DuplicatePreferenceValue { dimension, value } => write!(
                f,
                "implicit preference on `{dimension}` lists value id {value} more than once"
            ),
            SkylineError::NotMaterialized { dimension, value } => write!(
                f,
                "value id {value} of dimension `{dimension}` is not materialized in the index"
            ),
            SkylineError::EpochMismatch { expected, actual } => write!(
                f,
                "dataset moved from epoch {expected} to epoch {actual}; the result would be stale"
            ),
            SkylineError::ParseError(msg) => write!(f, "preference parse error: {msg}"),
            SkylineError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            SkylineError::DeadlineExceeded => {
                write!(f, "request deadline exceeded (or cancelled) before completion")
            }
            SkylineError::Overloaded => {
                write!(f, "service overloaded: admission queue full, request shed")
            }
            SkylineError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is unavailable (quarantined or failed mid-query)")
            }
            SkylineError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            SkylineError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for SkylineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let err = SkylineError::UnknownValue {
            dimension: "hotel-group".into(),
            value: "Z".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("hotel-group"));
        assert!(msg.contains('Z'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SkylineError::EmptyDataset, SkylineError::EmptyDataset);
        assert_ne!(
            SkylineError::EmptyDataset,
            SkylineError::ParseError("x".into())
        );
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(SkylineError::EmptyDataset);
        assert!(err.to_string().contains("non-empty"));
    }
}
