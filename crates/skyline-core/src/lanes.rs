//! Bit-parallel packed window lanes: the hardware floor of the dominance scan.
//!
//! The compiled kernel ([`crate::kernel::CompiledRelation`]) reduced a pairwise dominance
//! test to contiguous loads and integer compares, but still walks the accepted window **one
//! candidate row at a time**. This module restructures the window into 64-row **blocks with
//! one lane per row**, so a single pass over a block answers the dominance question for all
//! 64 rows at once as plain `u64` mask algebra:
//!
//! * values are stored **block-major, dimension-major**: lane `l` of dimension `j` in block
//!   `b` lives at `(b * dims + j) * 64 + l`. A per-dimension mask kernel streams 64
//!   contiguous cells, compares each against the probe's value and packs the outcomes into
//!   one `u64` — a movemask without `std::simd`, autovectorizable on stable;
//! * per block, a `not_worse` mask is narrowed dimension by dimension (starting from the
//!   block's **validity mask**, so tail padding and evicted rows can never produce a false
//!   dominator) and a `strict` mask is accumulated; `not_worse & strict` is the set of lanes
//!   dominating the probe, and `trailing_zeros` recovers the first one in push order;
//! * the same algebra run with the operands swapped yields the set of lanes the probe
//!   dominates — BNL eviction and cross-fragment merge elimination clear those validity
//!   bits without touching the stored values (lanes are never reused).
//!
//! Nominal dimensions store `(value id, layered rank)` lanes: ranked (weak) orders compare
//! ranks with pure integer masks, general partial orders probe the compiled closure per
//! lane (the closure table is a few hundred bytes, L1-resident). NaN semantics mirror the
//! scalar kernel exactly: a NaN neither blocks nor establishes dominance, because every
//! mask is built from the same `!(a > b)` / `a < b` comparisons the scalar path uses.

use crate::kernel::CompiledOrder;

/// Rows per packed block: one lane per bit of the `u64` masks.
pub(crate) const LANE_COUNT: usize = 64;

/// A packed, cache-blocked copy of accepted rows, 64 per block, with one validity bit per
/// lane.
///
/// Pushing appends to the next free lane (allocating a zero-filled block when the previous
/// one is full); eviction clears validity bits and never compacts, so a lane index is a
/// stable identity for the lifetime of the scan. All queries take a `limit`: only lanes
/// strictly below it participate, which is what the in-order merge elimination needs to
/// restrict a candidate's view to earlier candidates.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedLanes {
    numeric_dims: usize,
    nominal_dims: usize,
    /// Numeric lanes, block-major: cell `(b * numeric_dims + j) * 64 + l`.
    nums: Vec<f64>,
    /// Nominal value-id lanes, same layout with `nominal_dims`.
    vals: Vec<u16>,
    /// Nominal layered-rank lanes, aligned with `vals`.
    ranks: Vec<u16>,
    /// One validity mask per block; bit `l` set when lane `l` holds a live row.
    valid: Vec<u64>,
    /// Lanes allocated so far (push count; evicted lanes stay allocated but invalid).
    len: usize,
}

impl PackedLanes {
    /// Empties the lanes and binds them to a relation's dimensions, keeping allocations.
    pub fn reset(&mut self, numeric_dims: usize, nominal_dims: usize) {
        self.numeric_dims = numeric_dims;
        self.nominal_dims = nominal_dims;
        self.nums.clear();
        self.vals.clear();
        self.ranks.clear();
        self.valid.clear();
        self.len = 0;
    }

    /// Lanes allocated so far (including evicted ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when lane `l` is allocated and has not been evicted.
    pub fn is_valid(&self, l: usize) -> bool {
        l < self.len && self.valid[l / LANE_COUNT] >> (l % LANE_COUNT) & 1 != 0
    }

    /// Evicts lane `l` (marks it invalid; its stored values are left in place).
    pub fn clear_valid(&mut self, l: usize) {
        debug_assert!(l < self.len);
        self.valid[l / LANE_COUNT] &= !(1u64 << (l % LANE_COUNT));
    }

    /// Appends one row to the next lane: `nums_row` in numeric-dimension order and
    /// `noms_pairs` as the `(value id, layered rank)` interleaved pairs of the nominal
    /// dimensions (the same format [`crate::kernel::DenseWindow`] stages its probe in).
    pub fn push(&mut self, nums_row: &[f64], noms_pairs: &[u16]) {
        debug_assert_eq!(nums_row.len(), self.numeric_dims);
        debug_assert_eq!(noms_pairs.len(), self.nominal_dims * 2);
        let lane = self.len % LANE_COUNT;
        if lane == 0 {
            // Zero-filled padding is harmless: padding lanes have no validity bit, and
            // every mask query starts from the validity mask.
            self.nums
                .resize(self.nums.len() + self.numeric_dims * LANE_COUNT, 0.0);
            self.vals
                .resize(self.vals.len() + self.nominal_dims * LANE_COUNT, 0);
            self.ranks
                .resize(self.ranks.len() + self.nominal_dims * LANE_COUNT, 0);
            self.valid.push(0);
        }
        let b = self.len / LANE_COUNT;
        for (j, &v) in nums_row.iter().enumerate() {
            self.nums[(b * self.numeric_dims + j) * LANE_COUNT + lane] = v;
        }
        for j in 0..self.nominal_dims {
            self.vals[(b * self.nominal_dims + j) * LANE_COUNT + lane] = noms_pairs[2 * j];
            self.ranks[(b * self.nominal_dims + j) * LANE_COUNT + lane] = noms_pairs[2 * j + 1];
        }
        self.valid[b] |= 1 << lane;
        self.len += 1;
    }

    /// The validity mask of block `b` restricted to lanes strictly below `limit`.
    #[inline]
    fn limited_valid(&self, b: usize, limit: usize) -> u64 {
        let base = b * LANE_COUNT;
        let mut mask = self.valid[b];
        if limit < base + LANE_COUNT {
            // `limit > base` is guaranteed by the callers' block-range loop.
            mask &= (1u64 << (limit - base)) - 1;
        }
        mask
    }

    /// Index (in push order) of the first valid lane **below `limit`** whose row dominates
    /// the probe (`pn` numeric values, `probe` nominal `(id, rank)` pairs), or `None`.
    pub fn first_dominator(
        &self,
        orders: &[CompiledOrder],
        pn: &[f64],
        probe: &[u16],
        limit: usize,
    ) -> Option<usize> {
        debug_assert!(limit <= self.len);
        let blocks = limit.div_ceil(LANE_COUNT);
        'blocks: for b in 0..blocks {
            let mut nw = self.limited_valid(b, limit);
            if nw == 0 {
                continue;
            }
            let mut st = 0u64;
            for (j, &pv) in pn.iter().enumerate() {
                let lane = self.numeric_lane(b, j);
                let (not_worse, strict) = numeric_masks(lane, pv);
                nw &= not_worse;
                st |= strict;
                if nw == 0 {
                    continue 'blocks;
                }
            }
            for (j, order) in orders.iter().enumerate() {
                let vals = self.value_lane(b, j);
                let (pvv, pvr) = (probe[2 * j], probe[2 * j + 1]);
                let (not_worse, strict) = if order.is_ranked() {
                    ranked_masks(vals, self.rank_lane(b, j), pvv, pvr)
                } else {
                    closure_masks(order, vals, pvv)
                };
                nw &= not_worse;
                st |= strict;
                if nw == 0 {
                    continue 'blocks;
                }
            }
            let hit = nw & st;
            if hit != 0 {
                return Some(b * LANE_COUNT + hit.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Evicts every valid lane **below `limit`** whose row is dominated *by* the probe:
    /// the reverse direction of [`PackedLanes::first_dominator`], used by BNL window
    /// eviction and the merge elimination. Stored values stay in place; only validity bits
    /// are cleared.
    pub fn clear_dominated_by(
        &mut self,
        orders: &[CompiledOrder],
        pn: &[f64],
        probe: &[u16],
        limit: usize,
    ) {
        debug_assert!(limit <= self.len);
        let blocks = limit.div_ceil(LANE_COUNT);
        'blocks: for b in 0..blocks {
            let mut nw = self.limited_valid(b, limit);
            if nw == 0 {
                continue;
            }
            let mut st = 0u64;
            for (j, &pv) in pn.iter().enumerate() {
                let lane = self.numeric_lane(b, j);
                let (not_worse, strict) = numeric_masks_rev(lane, pv);
                nw &= not_worse;
                st |= strict;
                if nw == 0 {
                    continue 'blocks;
                }
            }
            for (j, order) in orders.iter().enumerate() {
                let vals = self.value_lane(b, j);
                let (pvv, pvr) = (probe[2 * j], probe[2 * j + 1]);
                let (not_worse, strict) = if order.is_ranked() {
                    ranked_masks_rev(vals, self.rank_lane(b, j), pvv, pvr)
                } else {
                    closure_masks_rev(order, vals, pvv)
                };
                nw &= not_worse;
                st |= strict;
                if nw == 0 {
                    continue 'blocks;
                }
            }
            self.valid[b] &= !(nw & st);
        }
    }

    #[inline]
    fn numeric_lane(&self, b: usize, j: usize) -> &[f64] {
        let start = (b * self.numeric_dims + j) * LANE_COUNT;
        &self.nums[start..start + LANE_COUNT]
    }

    #[inline]
    fn value_lane(&self, b: usize, j: usize) -> &[u16] {
        let start = (b * self.nominal_dims + j) * LANE_COUNT;
        &self.vals[start..start + LANE_COUNT]
    }

    #[inline]
    fn rank_lane(&self, b: usize, j: usize) -> &[u16] {
        let start = (b * self.nominal_dims + j) * LANE_COUNT;
        &self.ranks[start..start + LANE_COUNT]
    }
}

/// Numeric movemask, lane-dominates-probe direction: bit `l` of `not_worse` when lane `l`'s
/// value is not worse than (not greater than) `pv`, of `strict` when it is strictly better.
// `!(qv > pv)` is deliberate, not `qv <= pv`: NaN must neither block nor establish
// dominance, exactly mirroring the scalar kernel.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline]
fn numeric_masks(lane: &[f64], pv: f64) -> (u64, u64) {
    let mut not_worse = 0u64;
    let mut strict = 0u64;
    for (l, &qv) in lane.iter().enumerate() {
        not_worse |= u64::from(!(qv > pv)) << l;
        strict |= u64::from(qv < pv) << l;
    }
    (not_worse, strict)
}

/// Numeric movemask, probe-dominates-lane direction.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline]
fn numeric_masks_rev(lane: &[f64], pv: f64) -> (u64, u64) {
    let mut not_worse = 0u64;
    let mut strict = 0u64;
    for (l, &qv) in lane.iter().enumerate() {
        not_worse |= u64::from(!(pv > qv)) << l;
        strict |= u64::from(pv < qv) << l;
    }
    (not_worse, strict)
}

/// Ranked (weak-order) nominal movemask, lane-dominates-probe direction: `q ⪯ p ⟺ q = p ∨
/// rank(q) < rank(p)`, strict exactly on the rank compare.
#[inline]
fn ranked_masks(vals: &[u16], ranks: &[u16], pvv: u16, pvr: u16) -> (u64, u64) {
    let mut not_worse = 0u64;
    let mut strict = 0u64;
    for l in 0..LANE_COUNT {
        let better = ranks[l] < pvr;
        not_worse |= u64::from((vals[l] == pvv) | better) << l;
        strict |= u64::from(better) << l;
    }
    (not_worse, strict)
}

/// Ranked nominal movemask, probe-dominates-lane direction.
#[inline]
fn ranked_masks_rev(vals: &[u16], ranks: &[u16], pvv: u16, pvr: u16) -> (u64, u64) {
    let mut not_worse = 0u64;
    let mut strict = 0u64;
    for l in 0..LANE_COUNT {
        let better = pvr < ranks[l];
        not_worse |= u64::from((vals[l] == pvv) | better) << l;
        strict |= u64::from(better) << l;
    }
    (not_worse, strict)
}

/// General partial-order nominal mask, lane-dominates-probe direction: probes the compiled
/// closure per lane (strict orders are irreflexive, so `preferred` is false on equal values
/// and `strict` needs no extra `differs` term).
#[inline]
fn closure_masks(order: &CompiledOrder, vals: &[u16], pvv: u16) -> (u64, u64) {
    let mut not_worse = 0u64;
    let mut strict = 0u64;
    for (l, &qv) in vals.iter().enumerate() {
        let preferred = order.strictly_preferred(qv, pvv);
        not_worse |= u64::from((qv == pvv) | preferred) << l;
        strict |= u64::from(preferred) << l;
    }
    (not_worse, strict)
}

/// General partial-order nominal mask, probe-dominates-lane direction.
#[inline]
fn closure_masks_rev(order: &CompiledOrder, vals: &[u16], pvv: u16) -> (u64, u64) {
    let mut not_worse = 0u64;
    let mut strict = 0u64;
    for (l, &qv) in vals.iter().enumerate() {
        let preferred = order.strictly_preferred(pvv, qv);
        not_worse |= u64::from((qv == pvv) | preferred) << l;
        strict |= u64::from(preferred) << l;
    }
    (not_worse, strict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::PartialOrder;

    fn ranked_order(card: usize, chain: &[u16]) -> CompiledOrder {
        let pairs: Vec<(u16, u16)> = chain.windows(2).map(|w| (w[0], w[1])).collect();
        // Close the chain over the remaining values: every listed value beats the rest.
        let mut all = pairs.clone();
        if let Some(&last) = chain.last() {
            for v in 0..card as u16 {
                if !chain.contains(&v) {
                    all.push((last, v));
                }
            }
        }
        CompiledOrder::compile(&PartialOrder::from_pairs(card, all).unwrap())
    }

    fn pairs_for(orders: &[CompiledOrder], vals: &[u16]) -> Vec<u16> {
        orders
            .iter()
            .zip(vals)
            .flat_map(|(o, &v)| [v, o.layer(v)])
            .collect()
    }

    #[test]
    fn push_fills_lanes_across_block_boundaries() {
        let mut lanes = PackedLanes::default();
        lanes.reset(1, 1);
        let orders = vec![ranked_order(3, &[0, 1])];
        for i in 0..130 {
            let pairs = pairs_for(&orders, &[(i % 3) as u16]);
            lanes.push(&[i as f64], &pairs);
        }
        assert_eq!(lanes.len(), 130);
        assert!(lanes.is_valid(0));
        assert!(lanes.is_valid(129));
        assert!(!lanes.is_valid(130), "unallocated lanes are invalid");
        lanes.clear_valid(64);
        assert!(!lanes.is_valid(64));
        assert!(lanes.is_valid(65));
    }

    #[test]
    fn first_dominator_finds_the_earliest_lane_and_respects_limits() {
        let mut lanes = PackedLanes::default();
        lanes.reset(2, 0);
        // Lanes 0..70 all have value (5, 5); the probe (6, 6) is dominated by each.
        for _ in 0..70 {
            lanes.push(&[5.0, 5.0], &[]);
        }
        assert_eq!(lanes.first_dominator(&[], &[6.0, 6.0], &[], 70), Some(0));
        // Evict the whole first block: the first dominator moves to lane 64.
        for l in 0..64 {
            lanes.clear_valid(l);
        }
        assert_eq!(lanes.first_dominator(&[], &[6.0, 6.0], &[], 70), Some(64));
        assert_eq!(
            lanes.first_dominator(&[], &[6.0, 6.0], &[], 64),
            None,
            "limit excludes lanes at and above it"
        );
        // Equal rows never dominate (no strict dimension).
        assert_eq!(lanes.first_dominator(&[], &[5.0, 5.0], &[], 70), None);
        // A NaN probe cell is indifferent (neither blocks nor establishes dominance), so
        // the lanes still dominate via the second dimension — and a NaN can never be the
        // strict edge itself.
        assert_eq!(
            lanes.first_dominator(&[], &[f64::NAN, 6.0], &[], 70),
            Some(64)
        );
        assert_eq!(lanes.first_dominator(&[], &[f64::NAN, 5.0], &[], 70), None);
    }

    #[test]
    fn clear_dominated_by_evicts_exactly_the_dominated_lanes() {
        let mut lanes = PackedLanes::default();
        let orders = vec![ranked_order(3, &[0, 1])];
        lanes.reset(1, 1);
        // Probe (2.0, value 0). Lane 0: strictly better numeric — survives. Lane 1: equal
        // row — survives (no strict edge). Lanes 2–4: worse numeric, worse nominal
        // (0 ≺ 1), or both — all dominated.
        for (num, val) in [(1.0, 0), (2.0, 0), (3.0, 0), (2.0, 1), (3.0, 1)] {
            lanes.push(&[num], &pairs_for(&orders, &[val]));
        }
        let probe = pairs_for(&orders, &[0]);
        lanes.clear_dominated_by(&orders, &[2.0], &probe, lanes.len());
        let survivors: Vec<usize> = (0..lanes.len()).filter(|&l| lanes.is_valid(l)).collect();
        assert_eq!(survivors, vec![0, 1], "lanes 2, 3 and 4 are dominated");
    }

    #[test]
    fn unranked_orders_take_the_closure_path_and_match_a_scalar_oracle() {
        // 0 ≺ 2 ≺ 1 plus the island 3 ≺ 4: not a weak order, so every mask must come from
        // the closure probes. Check both directions against a scalar re-derivation.
        let order =
            CompiledOrder::compile(&PartialOrder::from_pairs(5, [(0, 2), (2, 1), (3, 4)]).unwrap());
        assert!(!order.is_ranked());
        let orders = std::slice::from_ref(&order);
        let lane_rows: Vec<(f64, u16)> =
            (0..70).map(|i| ((i % 3) as f64, (i % 5) as u16)).collect();
        let mut lanes = PackedLanes::default();
        lanes.reset(1, 1);
        for &(num, val) in &lane_rows {
            lanes.push(&[num], &pairs_for(orders, &[val]));
        }
        let dominates = |(qn, qv): (f64, u16), (pn, pv): (f64, u16)| {
            let num_ok = qn <= pn;
            let nom_ok = qv == pv || order.strictly_preferred(qv, pv);
            num_ok && nom_ok && (qn < pn || order.strictly_preferred(qv, pv))
        };
        for pn in 0..3 {
            for pv in 0..5u16 {
                let p = (pn as f64, pv);
                let probe = pairs_for(orders, &[pv]);
                let expected = lane_rows.iter().position(|&q| dominates(q, p));
                assert_eq!(
                    lanes.first_dominator(orders, &[p.0], &probe, lanes.len()),
                    expected,
                    "probe ({pn}, {pv})"
                );
                // Reverse direction: eviction must clear exactly the dominated lanes.
                let mut scratch = lanes.clone();
                scratch.clear_dominated_by(orders, &[p.0], &probe, scratch.len());
                for (l, &q) in lane_rows.iter().enumerate() {
                    assert_eq!(
                        scratch.is_valid(l),
                        !dominates(p, q),
                        "probe ({pn}, {pv}), lane {l}"
                    );
                }
            }
        }
    }
}
