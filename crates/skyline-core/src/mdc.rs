//! Minimal Disqualifying Conditions (MDCs).
//!
//! For a template order `R` and a skyline point `p ∈ SKY(R)`, a *disqualifying condition* is a
//! set of extra value pairs `R'` (disjoint from and conflict-free with `R`) whose addition makes
//! some other point dominate `p`. A **minimal** disqualifying condition (MDC) is one with no
//! proper subset that already disqualifies `p`. The concept comes from the authors' earlier
//! "Mining favorable facets" work (\[20\]) and is used here exactly the way Section 3.1 describes:
//! during IPO-tree construction, a node's disqualified set `A` is found by checking, for every
//! template skyline point, whether one of its MDCs is contained in the node's implicit
//! preference.
//!
//! Every MDC pair states "`better` must be preferred to `worse` on nominal dimension `dim`".

use crate::bitset::BitSet;
use crate::dominance::DominanceContext;
use crate::order::{PartialOrder, Preference};
use crate::value::{PointId, ValueId};

/// One required binary order `(better ≺ worse)` on a nominal dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MdcPair {
    /// Nominal dimension index the pair applies to.
    pub dim: u16,
    /// The value that must become preferred…
    pub better: ValueId,
    /// …to this value.
    pub worse: ValueId,
}

/// A minimal disqualifying condition: a set of [`MdcPair`]s that together disqualify one
/// template skyline point. Pairs are kept sorted so subset tests and deduplication are cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mdc {
    pairs: Vec<MdcPair>,
}

impl Mdc {
    /// Creates a condition from pairs (sorted and deduplicated).
    pub fn new(mut pairs: Vec<MdcPair>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        Self { pairs }
    }

    /// The pairs of the condition.
    pub fn pairs(&self) -> &[MdcPair] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the condition contains no pair (never produced by the miner).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Subset test between two conditions (both sorted).
    pub fn is_subset_of(&self, other: &Mdc) -> bool {
        if self.pairs.len() > other.pairs.len() {
            return false;
        }
        let mut it = other.pairs.iter();
        'outer: for pair in &self.pairs {
            for candidate in it.by_ref() {
                match candidate.cmp(pair) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// True when every pair of the condition is implied by a *first-order* choice per
    /// dimension: `choices[dim] = Some(v)` represents the preference `v ≺ ∗` on that
    /// dimension, which implies `(v, w)` for every `w ≠ v`.
    pub fn implied_by_first_order(&self, choices: &[Option<ValueId>]) -> bool {
        self.pairs
            .iter()
            .all(|pair| choices.get(pair.dim as usize).copied().flatten() == Some(pair.better))
    }

    /// True when every pair of the condition can be derived from the given implicit preference
    /// profile (`P(R̃′)` contains the pair).
    pub fn implied_by_preference(&self, pref: &Preference) -> bool {
        self.pairs.iter().all(|pair| {
            let dim_pref = pref.dim(pair.dim as usize);
            match dim_pref.position(pair.better) {
                None => false,
                Some(bi) => match dim_pref.position(pair.worse) {
                    // better listed, worse unlisted: implied.
                    None => true,
                    Some(wi) => bi < wi,
                },
            }
        })
    }

    /// True when every pair of the condition is contained in the given per-dimension orders.
    pub fn implied_by_orders(&self, orders: &[PartialOrder]) -> bool {
        self.pairs
            .iter()
            .all(|pair| orders[pair.dim as usize].strictly_preferred(pair.better, pair.worse))
    }

    /// Approximate heap footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.pairs.len() * std::mem::size_of::<MdcPair>()
    }
}

/// The MDCs of every point of a template skyline.
#[derive(Debug, Clone, Default)]
pub struct MdcIndex {
    skyline: Vec<PointId>,
    mdcs: Vec<Vec<Mdc>>,
}

impl MdcIndex {
    /// The template skyline the index was built for (same order as [`MdcIndex::mdcs_of_index`]).
    pub fn skyline(&self) -> &[PointId] {
        &self.skyline
    }

    /// Number of skyline points covered.
    pub fn len(&self) -> usize {
        self.skyline.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.skyline.is_empty()
    }

    /// MDCs of the `i`-th skyline point.
    pub fn mdcs_of_index(&self, i: usize) -> &[Mdc] {
        &self.mdcs[i]
    }

    /// MDCs of a specific point id, if it is part of the indexed skyline.
    pub fn mdcs_of_point(&self, p: PointId) -> Option<&[Mdc]> {
        self.skyline
            .iter()
            .position(|&s| s == p)
            .map(|i| self.mdcs[i].as_slice())
    }

    /// Indexes (into the skyline ordering) of the points disqualified by a combination of
    /// first-order choices (`choices[dim] = Some(v)` ⇔ the node applies `v ≺ ∗` on `dim`).
    pub fn disqualified_by_first_order(&self, choices: &[Option<ValueId>]) -> BitSet {
        let mut out = BitSet::new(self.skyline.len());
        for (i, mdcs) in self.mdcs.iter().enumerate() {
            if mdcs.iter().any(|m| m.implied_by_first_order(choices)) {
                out.insert(i);
            }
        }
        out
    }

    /// Point ids disqualified by an arbitrary implicit preference profile.
    pub fn disqualified_by_preference(&self, pref: &Preference) -> Vec<PointId> {
        self.skyline
            .iter()
            .zip(&self.mdcs)
            .filter(|(_, mdcs)| mdcs.iter().any(|m| m.implied_by_preference(pref)))
            .map(|(&p, _)| p)
            .collect()
    }

    /// Total number of stored conditions (for storage accounting).
    pub fn condition_count(&self) -> usize {
        self.mdcs.iter().map(Vec::len).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.skyline.len() * std::mem::size_of::<PointId>()
            + self
                .mdcs
                .iter()
                .flat_map(|v| v.iter().map(Mdc::approximate_bytes))
                .sum::<usize>()
    }
}

/// Computes the MDCs of every point in `skyline` with respect to the template relation bound
/// to `ctx` (which must be the *template* context, not a query context).
///
/// For every skyline point `p` and every other point `q`, the candidate condition is the set of
/// pairs `(q.Dᵢ, p.Dᵢ)` on the nominal dimensions where the two values are distinct and not yet
/// related by the template; the candidate is feasible when `q` is at least as good as `p` on
/// every numeric dimension and never *worse* than `p` on a nominal dimension under the
/// template. Minimal candidates (by subset inclusion) are kept.
///
/// Cost is `O(|D| · |SKY(R)| · m)`, which is exactly the preprocessing cost the paper attributes
/// to IPO-tree construction.
pub fn compute_mdcs(ctx: &DominanceContext<'_>, skyline: &[PointId]) -> MdcIndex {
    let all_points: Vec<PointId> = ctx.dataset().point_ids().collect();
    compute_mdcs_with_dominators(ctx, skyline, &all_points)
}

/// Like [`compute_mdcs`] but only considers `dominators` as potential dominating points.
///
/// Restricting the dominators to the skyline of the dataset under the *same* relation as `ctx`
/// is lossless: if any point disqualifies `p` under a refinement, some skyline point does too
/// (follow the dominance chain upwards). This turns the `O(|D|·|SKY|)` mining pass into
/// `O(|SKY(base)|·|SKY|)`, which is what makes full IPO-tree construction practical.
pub fn compute_mdcs_with_dominators(
    ctx: &DominanceContext<'_>,
    skyline: &[PointId],
    dominators: &[PointId],
) -> MdcIndex {
    let data = ctx.dataset();
    let schema = data.schema();
    let orders = ctx.orders();

    let mut mdcs = Vec::with_capacity(skyline.len());
    for &p in skyline {
        let mut candidates: Vec<Mdc> = Vec::new();
        'next_q: for &q in dominators {
            if q == p {
                continue;
            }
            let mut strict = false;
            // Numeric dimensions: q must be at least as good everywhere.
            for j in 0..schema.numeric_count() {
                let qv = data.numeric(q, j);
                let pv = data.numeric(p, j);
                if qv > pv {
                    continue 'next_q;
                }
                if qv < pv {
                    strict = true;
                }
            }
            // Nominal dimensions: collect the extra pairs needed.
            let mut pairs: Vec<MdcPair> = Vec::new();
            for (j, order) in orders.iter().enumerate() {
                let qv = data.nominal(q, j);
                let pv = data.nominal(p, j);
                if qv == pv {
                    continue;
                }
                if order.strictly_preferred(qv, pv) {
                    strict = true;
                } else if order.strictly_preferred(pv, qv) {
                    // Any refinement keeps p strictly better here (conflict-freedom), so q can
                    // never dominate p.
                    continue 'next_q;
                } else {
                    pairs.push(MdcPair {
                        dim: j as u16,
                        better: qv,
                        worse: pv,
                    });
                }
            }
            if pairs.is_empty() {
                // q already dominates p under the template (impossible when `skyline` really is
                // SKY(R)) or q equals p in every dimension; nothing to record either way.
                continue;
            }
            let _ = strict; // adding any pair introduces a strict preference, so q dominates.
            candidates.push(Mdc::new(pairs));
        }
        mdcs.push(minimalize(candidates));
    }
    MdcIndex {
        skyline: skyline.to_vec(),
        mdcs,
    }
}

/// Removes duplicate conditions and prunes conditions that strictly contain a kept single-pair
/// condition.
///
/// Full subset-minimality is only an optimization (a superset condition can never change which
/// preferences disqualify the point, it is just redundant), and computing it exactly is
/// quadratic in the number of candidate conditions — far too slow at the paper's scale, where a
/// skyline point can have tens of thousands of dominators. Deduplication plus single-pair
/// pruning removes the overwhelming majority of the redundancy at linear cost; the handful of
/// remaining redundant multi-pair conditions only cost a few bytes of storage.
fn minimalize(candidates: Vec<Mdc>) -> Vec<Mdc> {
    use std::collections::HashSet;
    let mut distinct: Vec<Mdc> = Vec::with_capacity(candidates.len().min(1024));
    let mut seen: HashSet<Mdc> = HashSet::with_capacity(candidates.len().min(1024));
    let mut single_pairs: HashSet<MdcPair> = HashSet::new();
    for cand in candidates {
        if seen.insert(cand.clone()) {
            if cand.len() == 1 {
                single_pairs.insert(cand.pairs()[0]);
            }
            distinct.push(cand);
        }
    }
    let mut kept: Vec<Mdc> = distinct
        .into_iter()
        .filter(|c| c.len() == 1 || !c.pairs().iter().any(|p| single_pairs.contains(p)))
        .collect();
    kept.sort_by_key(Mdc::len);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bnl;
    use crate::dataset::{Dataset, DatasetBuilder, RowValue};
    use crate::order::{ImplicitPreference, Template};
    use crate::schema::{Dimension, Schema};

    fn vacation_data() -> Dataset {
        let schema = Schema::new(vec![
            Dimension::numeric("price"),
            Dimension::numeric("class-neg"),
            Dimension::nominal_with_labels("hotel-group", ["T", "H", "M"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        for (price, class, group) in [
            (1600.0, 4.0, "T"),
            (2400.0, 1.0, "T"),
            (3000.0, 5.0, "H"),
            (3600.0, 4.0, "H"),
            (2400.0, 2.0, "M"),
            (3000.0, 3.0, "M"),
        ] {
            b.push_row([RowValue::Num(price), RowValue::Num(-class), group.into()])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn mdc_subset_and_implication() {
        let a = Mdc::new(vec![MdcPair {
            dim: 0,
            better: 1,
            worse: 2,
        }]);
        let b = Mdc::new(vec![
            MdcPair {
                dim: 0,
                better: 1,
                worse: 2,
            },
            MdcPair {
                dim: 1,
                better: 0,
                worse: 3,
            },
        ]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));

        assert!(a.implied_by_first_order(&[Some(1), None]));
        assert!(!a.implied_by_first_order(&[Some(2), None]));
        assert!(!b.implied_by_first_order(&[Some(1), None]));
        assert!(b.implied_by_first_order(&[Some(1), Some(0)]));

        let pref = Preference::from_dims(vec![
            ImplicitPreference::new([1]).unwrap(),
            ImplicitPreference::new([0, 3]).unwrap(),
        ]);
        assert!(b.implied_by_preference(&pref));
        let weaker = Preference::from_dims(vec![
            ImplicitPreference::new([1]).unwrap(),
            ImplicitPreference::new([3, 0]).unwrap(),
        ]);
        assert!(!b.implied_by_preference(&weaker));
    }

    #[test]
    fn mdcs_disqualify_exactly_the_right_points() {
        // Under the empty template, SKY = {a, c, e, f}. Checking each preference of Table 2
        // against the MDCs must reproduce the disqualified points.
        let data = vacation_data();
        let schema = data.schema().clone();
        let template = Template::empty(&schema);
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let sky = bnl::skyline(&ctx);
        assert_eq!(sky, vec![0, 2, 4, 5]);
        let index = compute_mdcs(&ctx, &sky);
        assert_eq!(index.len(), 4);
        assert!(!index.is_empty());

        let cases = [
            ("T < M < *", vec![4, 5]), // Alice keeps {a, c}
            ("H < M < *", vec![5]),    // Chris keeps {a, c, e}
            ("H < T < *", vec![4, 5]), // Emily keeps {a, c}
            ("M < *", vec![]),         // Fred keeps all four
        ];
        for (text, expected_disqualified) in cases {
            let pref = Preference::parse(&schema, [("hotel-group", text)]).unwrap();
            let got = index.disqualified_by_preference(&pref);
            assert_eq!(got, expected_disqualified, "preference {text}");
        }
    }

    #[test]
    fn disqualified_by_first_order_matches_preference_form() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let sky = bnl::skyline(&ctx);
        let index = compute_mdcs(&ctx, &sky);
        // First-order choice T ≺ * on the only nominal dimension.
        let bits = index.disqualified_by_first_order(&[Some(0)]);
        let by_pref = index.disqualified_by_preference(&Preference::from_dims(vec![
            ImplicitPreference::first_order(0),
        ]));
        let from_bits: Vec<PointId> = bits.iter().map(|i| index.skyline()[i]).collect();
        assert_eq!(from_bits, by_pref);
        // No choice at all disqualifies nothing.
        assert!(index.disqualified_by_first_order(&[None]).is_empty());
    }

    #[test]
    fn skyline_points_never_have_empty_mdcs() {
        let data = vacation_data();
        let template = Template::empty(data.schema());
        let ctx = DominanceContext::for_template(&data, &template).unwrap();
        let sky = bnl::skyline(&ctx);
        let index = compute_mdcs(&ctx, &sky);
        for i in 0..index.len() {
            for mdc in index.mdcs_of_index(i) {
                assert!(!mdc.is_empty());
            }
        }
        assert!(index.condition_count() > 0);
        assert!(index.approximate_bytes() > 0);
        assert!(index.mdcs_of_point(0).is_some());
        assert!(index.mdcs_of_point(1).is_none());
    }

    #[test]
    fn minimalize_prunes_supersets_and_duplicates() {
        let small = Mdc::new(vec![MdcPair {
            dim: 0,
            better: 1,
            worse: 0,
        }]);
        let big = Mdc::new(vec![
            MdcPair {
                dim: 0,
                better: 1,
                worse: 0,
            },
            MdcPair {
                dim: 1,
                better: 2,
                worse: 0,
            },
        ]);
        let other = Mdc::new(vec![MdcPair {
            dim: 1,
            better: 2,
            worse: 0,
        }]);
        let kept = minimalize(vec![
            big.clone(),
            small.clone(),
            small.clone(),
            other.clone(),
        ]);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&small));
        assert!(kept.contains(&other));
        assert!(!kept.contains(&big));
    }
}
