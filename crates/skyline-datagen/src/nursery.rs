//! The UCI **Nursery** data set, regenerated exactly.
//!
//! The paper's real-data experiment (Section 5.2, Figure 8) uses the Nursery data set: 12,960
//! instances, 8 attributes, six of which are treated as totally ordered and two as nominal —
//! *form of the family* and *number of children* — both with cardinality 4.
//!
//! Nursery was derived from a hierarchical decision model and enumerates **every combination**
//! of its attribute values (3·5·4·4·3·2·3·3 = 12,960), so the data portion of the original file
//! can be reconstructed exactly from the attribute domains; no download is required. The class
//! label of the original data set is not used by the paper's experiment and is omitted here.
//!
//! The six totally-ordered attributes are mapped to their ordinal position in the attribute's
//! documented value list (0 = best, matching "smaller is better"); the two nominal attributes
//! keep their textual labels.

use skyline_core::{Dataset, Dimension, Schema};

/// Ordered value lists of the six attributes treated as totally ordered, best value first.
const PARENTS: [&str; 3] = ["usual", "pretentious", "great_pret"];
const HAS_NURS: [&str; 5] = ["proper", "less_proper", "improper", "critical", "very_crit"];
const HOUSING: [&str; 3] = ["convenient", "less_conv", "critical"];
const FINANCE: [&str; 2] = ["convenient", "inconv"];
const SOCIAL: [&str; 3] = ["nonprob", "slightly_prob", "problematic"];
const HEALTH: [&str; 3] = ["recommended", "priority", "not_recom"];

/// Value lists of the two nominal attributes (no predefined order).
const FORM: [&str; 4] = ["complete", "completed", "incomplete", "foster"];
const CHILDREN: [&str; 4] = ["1", "2", "3", "more"];

/// Number of rows of the full data set.
pub const NURSERY_ROWS: usize = 3 * 5 * 4 * 4 * 3 * 2 * 3 * 3;

/// Builds the Nursery schema: six numeric (ordinal) dimensions followed by the two nominal
/// dimensions `form` and `children`.
pub fn nursery_schema() -> Schema {
    Schema::new(vec![
        Dimension::numeric("parents"),
        Dimension::numeric("has_nurs"),
        Dimension::numeric("housing"),
        Dimension::numeric("finance"),
        Dimension::numeric("social"),
        Dimension::numeric("health"),
        Dimension::nominal_with_labels("form", FORM),
        Dimension::nominal_with_labels("children", CHILDREN),
    ])
    .expect("nursery dimension names are unique")
}

/// Labels of the two nominal attributes, exposed for building preferences in examples/benches.
pub fn form_labels() -> &'static [&'static str] {
    &FORM
}

/// Labels of the `children` nominal attribute.
pub fn children_labels() -> &'static [&'static str] {
    &CHILDREN
}

/// Generates the full 12,960-row Nursery data set (the Cartesian product of all domains).
pub fn generate() -> Dataset {
    let schema = nursery_schema();
    let mut numeric_cols: Vec<Vec<f64>> =
        (0..6).map(|_| Vec::with_capacity(NURSERY_ROWS)).collect();
    let mut nominal_cols: Vec<Vec<u16>> =
        (0..2).map(|_| Vec::with_capacity(NURSERY_ROWS)).collect();

    for parents in 0..PARENTS.len() {
        for has_nurs in 0..HAS_NURS.len() {
            for form in 0..FORM.len() {
                for children in 0..CHILDREN.len() {
                    for housing in 0..HOUSING.len() {
                        for finance in 0..FINANCE.len() {
                            for social in 0..SOCIAL.len() {
                                for health in 0..HEALTH.len() {
                                    numeric_cols[0].push(parents as f64);
                                    numeric_cols[1].push(has_nurs as f64);
                                    numeric_cols[2].push(housing as f64);
                                    numeric_cols[3].push(finance as f64);
                                    numeric_cols[4].push(social as f64);
                                    numeric_cols[5].push(health as f64);
                                    nominal_cols[0].push(form as u16);
                                    nominal_cols[1].push(children as u16);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    Dataset::from_columns(schema, numeric_cols, nominal_cols)
        .expect("nursery columns are consistent")
}

/// Generates a deterministic sample of the Nursery data set containing every `stride`-th row.
/// Handy for fast unit tests; `stride = 1` is the full data set.
pub fn generate_sampled(stride: usize) -> Dataset {
    assert!(stride > 0, "stride must be positive");
    let full = generate();
    if stride == 1 {
        return full;
    }
    let schema = nursery_schema();
    let keep: Vec<u32> = (0..full.len() as u32).step_by(stride).collect();
    let numeric_cols = (0..6)
        .map(|j| keep.iter().map(|&p| full.numeric(p, j)).collect())
        .collect();
    let nominal_cols = (0..2)
        .map(|j| keep.iter().map(|&p| full.nominal(p, j)).collect())
        .collect();
    Dataset::from_columns(schema, numeric_cols, nominal_cols)
        .expect("sampled columns are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn row_count_matches_uci_description() {
        assert_eq!(NURSERY_ROWS, 12_960);
        let data = generate();
        assert_eq!(data.len(), NURSERY_ROWS);
    }

    #[test]
    fn schema_matches_paper_setup() {
        let schema = nursery_schema();
        assert_eq!(schema.arity(), 8);
        assert_eq!(schema.numeric_count(), 6);
        assert_eq!(schema.nominal_count(), 2);
        // "The cardinality of both nominal attributes are equal to 4."
        assert_eq!(schema.nominal_cardinalities(), vec![4, 4]);
        assert_eq!(schema.nominal_index_by_name("form").unwrap(), 0);
        assert_eq!(schema.nominal_index_by_name("children").unwrap(), 1);
    }

    #[test]
    fn rows_are_unique_and_cover_the_product() {
        let data = generate();
        let mut seen = HashSet::with_capacity(data.len());
        for p in data.point_ids() {
            let key: Vec<u32> = (0..6)
                .map(|j| data.numeric(p, j) as u32)
                .chain((0..2).map(|j| data.nominal(p, j) as u32))
                .collect();
            assert!(seen.insert(key), "duplicate row {p}");
        }
        assert_eq!(seen.len(), NURSERY_ROWS);
    }

    #[test]
    fn ordinal_values_stay_in_range() {
        let data = generate();
        let maxes = [2.0, 4.0, 2.0, 1.0, 2.0, 2.0];
        for (j, &max) in maxes.iter().enumerate() {
            let col = data.numeric_column(j);
            assert!(col.iter().all(|&v| v >= 0.0 && v <= max));
            assert!(col.contains(&max), "value {max} missing in column {j}");
        }
    }

    #[test]
    fn sampled_generation_subsets_the_full_set() {
        let sample = generate_sampled(100);
        assert_eq!(sample.len(), NURSERY_ROWS.div_ceil(100));
        assert_eq!(generate_sampled(1).len(), NURSERY_ROWS);
    }

    #[test]
    fn label_helpers_expose_domains() {
        assert_eq!(form_labels().len(), 4);
        assert_eq!(children_labels().len(), 4);
        assert!(form_labels().contains(&"foster"));
        assert!(children_labels().contains(&"more"));
    }
}
