//! Synthetic numeric + nominal data in the style of the paper's generator.
//!
//! Numeric dimensions follow the three classic models of Börzsönyi, Kossmann and Stocker
//! ("The skyline operator"):
//!
//! * **independent** — every dimension uniform in `[0, 1]`;
//! * **correlated** — points cluster around the diagonal (a point good in one dimension tends
//!   to be good in all), which produces very small skylines;
//! * **anti-correlated** — points cluster around the anti-diagonal plane `Σ xᵢ ≈ m/2` (a point
//!   good in one dimension tends to be bad in the others), which produces large skylines and
//!   is the workload the paper reports in detail.
//!
//! Nominal dimensions draw value ids from a [`crate::zipf::Zipf`] distribution with skew
//! θ, so value id 0 is the most frequent — matching the paper's template choice "the most
//! frequent value is universally preferred".

use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skyline_core::{Dataset, Dimension, NominalDomain, Schema};

/// Correlation model of the numeric dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Distribution {
    /// Uniform, independent dimensions.
    Independent,
    /// Correlated dimensions (small skylines).
    Correlated,
    /// Anti-correlated dimensions (large skylines; the paper's reported setting).
    #[default]
    AntiCorrelated,
}

impl Distribution {
    /// Short lowercase name (used by the benchmark harness for labels and CLI parsing).
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Independent => "independent",
            Distribution::Correlated => "correlated",
            Distribution::AntiCorrelated => "anti-correlated",
        }
    }

    /// Parses a name produced by [`Distribution::name`] (also accepts a few common synonyms).
    pub fn parse(text: &str) -> Option<Self> {
        match text.to_ascii_lowercase().as_str() {
            "independent" | "indep" | "uniform" => Some(Distribution::Independent),
            "correlated" | "corr" => Some(Distribution::Correlated),
            "anti-correlated" | "anticorrelated" | "anti" => Some(Distribution::AntiCorrelated),
            _ => None,
        }
    }
}

/// Builds the schema used by the synthetic generator: `numeric_dims` numeric dimensions named
/// `n0, n1, …` followed by `nominal_dims` nominal dimensions named `c0, c1, …`, each with an
/// anonymous domain of `cardinality` values.
pub fn synthetic_schema(numeric_dims: usize, nominal_dims: usize, cardinality: usize) -> Schema {
    let mut dims = Vec::with_capacity(numeric_dims + nominal_dims);
    for i in 0..numeric_dims {
        dims.push(Dimension::numeric(format!("n{i}")));
    }
    for i in 0..nominal_dims {
        dims.push(Dimension::nominal(
            format!("c{i}"),
            NominalDomain::anonymous(cardinality),
        ));
    }
    Schema::new(dims).expect("generated dimension names are unique")
}

/// Generates a synthetic dataset.
///
/// * `n` — number of rows;
/// * `numeric_dims`, `nominal_dims`, `cardinality` — schema shape (Table 4 defaults are 3, 2, 20);
/// * `distribution` — correlation model of the numeric dimensions;
/// * `theta` — Zipf skew of the nominal dimensions (Table 4 default is 1.0);
/// * `seed` — RNG seed, so every experiment is reproducible.
pub fn generate(
    n: usize,
    numeric_dims: usize,
    nominal_dims: usize,
    cardinality: usize,
    distribution: Distribution,
    theta: f64,
    seed: u64,
) -> Dataset {
    let schema = synthetic_schema(numeric_dims, nominal_dims, cardinality);
    let mut rng = SmallRng::seed_from_u64(seed);

    let mut numeric_cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n); numeric_dims];
    let mut row = vec![0.0f64; numeric_dims];
    for _ in 0..n {
        numeric_row(&mut rng, distribution, &mut row);
        for (col, &v) in numeric_cols.iter_mut().zip(&row) {
            col.push(v);
        }
    }

    let zipf = if nominal_dims > 0 {
        Some(Zipf::new(cardinality, theta))
    } else {
        None
    };
    let nominal_cols: Vec<Vec<u16>> = (0..nominal_dims)
        .map(|_| {
            zipf.as_ref()
                .expect("zipf built when nominal dims exist")
                .sample_many(&mut rng, n)
        })
        .collect();

    Dataset::from_columns(schema, numeric_cols, nominal_cols)
        .expect("generated columns are consistent")
}

/// Fills `out` with one numeric row drawn from `distribution`.
fn numeric_row<R: Rng + ?Sized>(rng: &mut R, distribution: Distribution, out: &mut [f64]) {
    let m = out.len();
    if m == 0 {
        return;
    }
    match distribution {
        Distribution::Independent => {
            for v in out.iter_mut() {
                *v = rng.gen();
            }
        }
        Distribution::Correlated => {
            // A common base level plus small independent jitter keeps all dimensions close to
            // each other, so a point that is good somewhere is good everywhere.
            let base: f64 = rng.gen();
            for v in out.iter_mut() {
                *v = clamp01(base + normalish(rng) * 0.05);
            }
        }
        Distribution::AntiCorrelated => {
            // Points concentrate around the plane Σ xᵢ = m/2 with large spread *within* the
            // plane: improvements in one dimension trade off against the others.
            let target = clamp01(0.5 + normalish(rng) * 0.05) * m as f64;
            // Split `target` across the dimensions with uniform weights.
            let mut weights: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() + 1e-9).collect();
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            for (v, w) in out.iter_mut().zip(&weights) {
                *v = clamp01(w * target);
            }
        }
    }
}

/// Cheap approximately-normal variate in roughly `[-3, 3]` (sum of uniforms, Irwin–Hall).
fn normalish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    sum - 6.0
}

fn clamp01(v: f64) -> f64 {
    v.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::algo::bnl;
    use skyline_core::{DominanceContext, Template};

    #[test]
    fn schema_shape_matches_request() {
        let schema = synthetic_schema(3, 2, 20);
        assert_eq!(schema.numeric_count(), 3);
        assert_eq!(schema.nominal_count(), 2);
        assert_eq!(schema.nominal_cardinalities(), vec![20, 20]);
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let a = generate(200, 3, 2, 10, Distribution::AntiCorrelated, 1.0, 42);
        let b = generate(200, 3, 2, 10, Distribution::AntiCorrelated, 1.0, 42);
        let c = generate(200, 3, 2, 10, Distribution::AntiCorrelated, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn values_stay_in_unit_interval_and_domain() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ] {
            let data = generate(500, 4, 2, 8, dist, 1.0, 7);
            for j in 0..4 {
                assert!(
                    data.numeric_column(j)
                        .iter()
                        .all(|v| (0.0..=1.0).contains(v)),
                    "{dist:?}"
                );
            }
            for j in 0..2 {
                assert!(data.nominal_column(j).iter().all(|&v| v < 8), "{dist:?}");
            }
        }
    }

    #[test]
    fn zipf_makes_value_zero_most_frequent() {
        let data = generate(5_000, 1, 1, 10, Distribution::Independent, 1.0, 3);
        let freq = data.nominal_value_frequencies(0);
        assert_eq!(data.values_by_frequency(0)[0], 0);
        assert!(freq[0] > freq[5]);
    }

    #[test]
    fn anti_correlated_has_larger_skyline_than_correlated() {
        let n = 2_000;
        let sizes: Vec<usize> = [
            Distribution::Correlated,
            Distribution::Independent,
            Distribution::AntiCorrelated,
        ]
        .into_iter()
        .map(|dist| {
            let data = generate(n, 3, 0, 1, dist, 1.0, 11);
            let template = Template::empty(data.schema());
            let ctx = DominanceContext::for_template(&data, &template).unwrap();
            bnl::skyline(&ctx).len()
        })
        .collect();
        assert!(
            sizes[0] < sizes[1],
            "correlated skyline should be smaller than independent"
        );
        assert!(
            sizes[1] < sizes[2],
            "independent skyline should be smaller than anti-correlated"
        );
    }

    #[test]
    fn distribution_parse_roundtrip() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ] {
            assert_eq!(Distribution::parse(dist.name()), Some(dist));
        }
        assert_eq!(
            Distribution::parse("anti"),
            Some(Distribution::AntiCorrelated)
        );
        assert_eq!(Distribution::parse("nonsense"), None);
    }

    #[test]
    fn zero_nominal_dims_supported() {
        let data = generate(50, 2, 0, 5, Distribution::Independent, 1.0, 1);
        assert_eq!(data.schema().nominal_count(), 0);
        assert_eq!(data.len(), 50);
    }
}
