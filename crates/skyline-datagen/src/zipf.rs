//! Zipfian sampling of nominal value ids.
//!
//! The paper's nominal attributes are "generated according to a Zipfian distribution" with a
//! skew parameter θ (default θ = 1, Table 4). Value id `0` is the most frequent value, id `1`
//! the second most frequent, and so on: `P(v = k) ∝ 1 / (k + 1)^θ`.

use rand::Rng;

/// A precomputed Zipfian distribution over `0..cardinality`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `cardinality` values with skew `theta`.
    ///
    /// `theta = 0` degenerates to the uniform distribution; larger values concentrate the mass
    /// on the first few ids. Panics if `cardinality` is zero or `theta` is negative/not finite.
    pub fn new(cardinality: usize, theta: f64) -> Self {
        assert!(
            cardinality > 0,
            "Zipf distribution needs at least one value"
        );
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be a non-negative finite number"
        );
        let mut weights: Vec<f64> = (0..cardinality)
            .map(|k| 1.0 / ((k + 1) as f64).powf(theta))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating point drift so the last bucket always catches u = 1 - ε.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Self {
            cumulative: weights,
        }
    }

    /// Number of values the distribution ranges over.
    pub fn cardinality(&self) -> usize {
        self.cumulative.len()
    }

    /// Probability of drawing value `k`.
    pub fn probability(&self, k: usize) -> f64 {
        if k >= self.cumulative.len() {
            return 0.0;
        }
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        self.cumulative[k] - prev
    }

    /// Draws one value id.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u) as u16
    }

    /// Draws `n` value ids.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u16> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let zipf = Zipf::new(20, 1.0);
        let total: f64 = (0..20).map(|k| zipf.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..20 {
            assert!(
                zipf.probability(k) <= zipf.probability(k - 1) + 1e-12,
                "probabilities must be non-increasing"
            );
        }
        assert_eq!(zipf.probability(25), 0.0);
        assert_eq!(zipf.cardinality(), 20);
    }

    #[test]
    fn theta_zero_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((zipf.probability(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_stay_in_range_and_follow_skew() {
        let zipf = Zipf::new(10, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let samples = zipf.sample_many(&mut rng, 20_000);
        assert!(samples.iter().all(|&v| (v as usize) < 10));
        let mut counts = [0usize; 10];
        for &v in &samples {
            counts[v as usize] += 1;
        }
        // Value 0 should be clearly the most frequent under θ=1.
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > counts[9] * 3);
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mild = Zipf::new(10, 0.5);
        let strong = Zipf::new(10, 2.0);
        assert!(strong.probability(0) > mild.probability(0));
        assert!(strong.probability(9) < mild.probability(9));
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_cardinality_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_theta_panics() {
        Zipf::new(3, -1.0);
    }

    #[test]
    fn single_value_always_sampled() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(zipf.sample_many(&mut rng, 100).iter().all(|&v| v == 0));
    }
}
