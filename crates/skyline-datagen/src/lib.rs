//! # skyline-datagen
//!
//! Data and workload generators for the experiments of *"Efficient Skyline Querying with
//! Variable User Preferences on Nominal Attributes"*.
//!
//! The paper evaluates on:
//!
//! * synthetic data produced by the generator released with the authors' earlier
//!   "Mining favorable facets" work: numeric dimensions follow the classic Börzsönyi
//!   **independent / correlated / anti-correlated** models, nominal dimensions draw value ids
//!   from a **Zipfian(θ)** distribution ([`synthetic`], [`zipf`], [`workload`]);
//! * the UCI **Nursery** data set (12,960 rows, 8 attributes, 2 of which are treated as
//!   nominal). Nursery is the complete Cartesian product of its attribute domains, so
//!   [`nursery`] regenerates it exactly without needing the original file.
//!
//! [`workload`] also generates the random implicit-preference queries (100 per configuration
//! in the paper) and exposes [`workload::ExperimentConfig`] mirroring Table 4's default
//! parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod nursery;
pub mod synthetic;
pub mod workload;
pub mod zipf;

pub use synthetic::Distribution;
pub use workload::{equi_depth_bounds, ExperimentConfig, QueryGenerator, WorkloadOp};
pub use zipf::Zipf;
