//! Experiment configurations (Table 4), random implicit-preference query workloads, and
//! mixed read/write streams for dynamic-dataset benchmarks.

use crate::synthetic::{self, Distribution};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use skyline_core::{Dataset, ImplicitPreference, PointId, Preference, Schema, Template, ValueId};

/// The experimental parameters of Table 4 plus the knobs the figures sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Number of tuples (`No. of tuples`, default 500 K).
    pub n: usize,
    /// Number of numeric dimensions (default 3).
    pub numeric_dims: usize,
    /// Number of nominal dimensions (default 2).
    pub nominal_dims: usize,
    /// Number of values in a nominal dimension (default 20).
    pub cardinality: usize,
    /// Zipfian parameter θ (default 1).
    pub theta: f64,
    /// Order of the implicit preference queries (default 3).
    pub pref_order: usize,
    /// Correlation model of the numeric dimensions (the paper reports anti-correlated).
    pub distribution: Distribution,
    /// RNG seed for data and query generation.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The defaults of Table 4, at the paper's full scale (500 K tuples).
    pub fn paper_default() -> Self {
        Self {
            n: 500_000,
            numeric_dims: 3,
            nominal_dims: 2,
            cardinality: 20,
            theta: 1.0,
            pref_order: 3,
            distribution: Distribution::AntiCorrelated,
            seed: 42,
        }
    }

    /// The same parameter shape scaled down so a full figure sweep runs in seconds on a laptop.
    /// Only `n` changes; every other Table 4 default is kept.
    pub fn scaled_default() -> Self {
        Self {
            n: 20_000,
            ..Self::paper_default()
        }
    }

    /// Total dimensionality (numeric + nominal), the x-axis of Figure 5.
    pub fn total_dims(&self) -> usize {
        self.numeric_dims + self.nominal_dims
    }

    /// Generates the synthetic dataset described by this configuration.
    pub fn generate_dataset(&self) -> Dataset {
        synthetic::generate(
            self.n,
            self.numeric_dims,
            self.nominal_dims,
            self.cardinality,
            self.distribution,
            self.theta,
            self.seed,
        )
    }

    /// The paper's default template over `dataset`: the most frequent value of every nominal
    /// dimension is universally preferred.
    pub fn template(&self, dataset: &Dataset) -> Template {
        Template::most_frequent_value(dataset).expect("dataset matches its own schema")
    }

    /// A query generator seeded deterministically from this configuration.
    pub fn query_generator(&self) -> QueryGenerator {
        QueryGenerator::new(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(1),
        )
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::scaled_default()
    }
}

/// Generates random implicit-preference queries that refine a template.
///
/// Following Section 5, "in each experiment, we randomly generated 100 implicit preferences"
/// and "if the order of the implicit preference R̃′ is set to x, it means that the order of R̃′ᵢ
/// for each nominal attribute Dᵢ is x". Because every query must refine the template, the
/// template's listed values (if any) form the mandatory prefix of each generated choice list.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    rng: SmallRng,
}

impl QueryGenerator {
    /// Creates a generator with a fixed seed (reproducible workloads).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Generates one random preference of the given per-dimension order.
    ///
    /// `allowed` optionally restricts, per nominal dimension, the pool of values the generator
    /// may list (e.g. the 10 most frequent values when exercising *IPO Tree-10*). The
    /// template's own values are always permitted.
    pub fn random_preference(
        &mut self,
        schema: &Schema,
        template: &Template,
        order: usize,
        allowed: Option<&[Vec<ValueId>]>,
    ) -> Preference {
        let mut dims = Vec::with_capacity(schema.nominal_count());
        for j in 0..schema.nominal_count() {
            let cardinality = schema.nominal_domain(j).map_or(0, |d| d.cardinality());
            let prefix: Vec<ValueId> = template
                .implicit()
                .map(|t| t.dim(j).choices().to_vec())
                .unwrap_or_default();
            let pool: Vec<ValueId> = match allowed.and_then(|a| a.get(j)) {
                Some(values) => values.clone(),
                None => (0..cardinality as ValueId).collect(),
            };
            let mut choices = prefix.clone();
            let mut candidates: Vec<ValueId> =
                pool.into_iter().filter(|v| !choices.contains(v)).collect();
            candidates.shuffle(&mut self.rng);
            while choices.len() < order && choices.len() < cardinality {
                match candidates.pop() {
                    Some(v) => choices.push(v),
                    None => break,
                }
            }
            dims.push(ImplicitPreference::new(choices).expect("generated choices are distinct"));
        }
        Preference::from_dims(dims)
    }

    /// Generates `count` random preferences (the paper uses `count = 100`).
    pub fn random_preferences(
        &mut self,
        schema: &Schema,
        template: &Template,
        order: usize,
        count: usize,
        allowed: Option<&[Vec<ValueId>]>,
    ) -> Vec<Preference> {
        (0..count)
            .map(|_| self.random_preference(schema, template, order, allowed))
            .collect()
    }

    /// Convenience access to the underlying RNG (used by benches that need extra randomness
    /// with the same reproducibility guarantees).
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }

    /// A Zipf-skewed **multi-user** query stream: `count` queries drawn (with repetition) from
    /// a pool of up to `pool_size` random preference profiles (independent draws, so the pool
    /// itself may contain repeats on small domains), where pool index `k` is requested with
    /// probability `∝ 1/(k+1)^θ`.
    ///
    /// This mirrors how a served system actually sees the paper's workload: many users, a few
    /// very popular preference profiles (the same skew the nominal *values* follow, Table 4)
    /// and a long tail of rare ones. A result cache keyed on canonical preferences should
    /// therefore see a hit rate approaching `1 - pool_size/count` for strong skew — the
    /// workload `skyline-service` benchmarks its throughput on.
    pub fn zipf_workload(
        &mut self,
        schema: &Schema,
        template: &Template,
        order: usize,
        pool_size: usize,
        count: usize,
        theta: f64,
    ) -> Vec<Preference> {
        assert!(pool_size > 0, "pool_size must be positive");
        assert!(
            pool_size <= u16::MAX as usize,
            "pool_size must fit the Zipf sampler's id range"
        );
        let pool = self.random_preferences(schema, template, order, pool_size, None);
        let zipf = crate::zipf::Zipf::new(pool.len(), theta);
        (0..count)
            .map(|_| pool[zipf.sample(&mut self.rng) as usize].clone())
            .collect()
    }

    /// An **open-loop** variant of [`QueryGenerator::zipf_workload`]: the same Zipf-skewed
    /// preference stream, each query stamped with an absolute arrival offset drawn from a
    /// Poisson process (exponential interarrival gaps of the given mean).
    ///
    /// Closed-loop replay — issue, wait for the answer, issue the next — lets a slow server
    /// throttle its own load, hiding queueing delay (coordinated omission). An open-loop
    /// harness fixes the arrival schedule in advance and measures each query's latency from
    /// its *scheduled* arrival, so time-to-first-row under a progressive result path is
    /// compared honestly against whole-result latency. Offsets are non-decreasing and the
    /// whole schedule is reproducible from the generator's seed.
    #[allow(clippy::too_many_arguments)]
    pub fn open_loop_zipf_workload(
        &mut self,
        schema: &Schema,
        template: &Template,
        order: usize,
        pool_size: usize,
        count: usize,
        theta: f64,
        mean_interarrival: std::time::Duration,
    ) -> Vec<(std::time::Duration, Preference)> {
        let prefs = self.zipf_workload(schema, template, order, pool_size, count, theta);
        let mean = mean_interarrival.as_secs_f64();
        let mut at = 0.0f64;
        prefs
            .into_iter()
            .map(|pref| {
                // Inverse-transform sampling of Exp(1/mean); `1 - u` keeps ln's argument
                // strictly positive for u ∈ [0, 1).
                let u: f64 = self.rng.gen::<f64>();
                at += -(1.0 - u).ln() * mean;
                (std::time::Duration::from_secs_f64(at), pref)
            })
            .collect()
    }

    /// A **mixed read/write stream** over a dynamic dataset: queries drawn from a Zipf-skewed
    /// preference pool (exactly like [`QueryGenerator::zipf_workload`]) interleaved with row
    /// insertions and deletions.
    ///
    /// Each of the `count` operations is a write with probability `write_fraction` (clamped
    /// to `[0, 1]`), split evenly between inserts and deletes. Inserted rows carry uniform
    /// numeric values in `[0, 1)` and Zipf(θ)-skewed nominal values — the same per-value skew
    /// the synthetic datasets use, so popular values keep arriving. Delete targets are drawn
    /// uniformly from every row id that exists at that point of the stream (`initial_rows`
    /// plus the inserts emitted so far); replaying a delete of an already-deleted row is the
    /// consumer's no-op, exactly as `SkylineEngine::delete_row` treats it.
    #[allow(clippy::too_many_arguments)]
    pub fn mixed_workload(
        &mut self,
        schema: &Schema,
        template: &Template,
        order: usize,
        pool_size: usize,
        count: usize,
        theta: f64,
        write_fraction: f64,
        initial_rows: usize,
    ) -> Vec<WorkloadOp> {
        let write_fraction = write_fraction.clamp(0.0, 1.0);
        let pool = self.random_preferences(schema, template, order, pool_size.max(1), None);
        let zipf = crate::zipf::Zipf::new(pool.len(), theta);
        let value_skews: Vec<crate::zipf::Zipf> = (0..schema.nominal_count())
            .map(|j| {
                let cardinality = schema
                    .nominal_domain(j)
                    .map_or(1, |d| d.cardinality().max(1));
                crate::zipf::Zipf::new(cardinality, theta)
            })
            .collect();
        let mut total_rows = initial_rows;
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let is_write = self.rng.gen::<f64>() < write_fraction;
            // Deletes need at least one addressable row.
            if is_write && (total_rows == 0 || self.rng.gen::<bool>()) {
                let numeric: Vec<f64> = (0..schema.numeric_count())
                    .map(|_| self.rng.gen::<f64>())
                    .collect();
                let nominal: Vec<ValueId> = value_skews
                    .iter()
                    .map(|z| z.sample(&mut self.rng))
                    .collect();
                total_rows += 1;
                ops.push(WorkloadOp::Insert { numeric, nominal });
            } else if is_write {
                let row = self.rng.gen_range(0..total_rows) as PointId;
                ops.push(WorkloadOp::Delete { row });
            } else {
                let pref = pool[zipf.sample(&mut self.rng) as usize].clone();
                ops.push(WorkloadOp::Query(pref));
            }
        }
        ops
    }
}

/// One operation of a mixed read/write stream (see [`QueryGenerator::mixed_workload`]).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadOp {
    /// Answer an implicit-preference query.
    Query(Preference),
    /// Insert a row (numeric values in numeric-index order, nominal value ids in
    /// nominal-index order).
    Insert {
        /// Values for the numeric dimensions.
        numeric: Vec<f64>,
        /// Value ids for the nominal dimensions.
        nominal: Vec<ValueId>,
    },
    /// Logically delete a row that exists at this point of the stream (it may already have
    /// been deleted by an earlier operation — consumers treat that as a no-op).
    Delete {
        /// The target row id.
        row: PointId,
    },
}

/// The `k` most frequent values of every nominal dimension of `dataset` (used both by the
/// truncated IPO tree and by workloads that must stay within the materialized values).
pub fn top_k_values(dataset: &Dataset, k: usize) -> Vec<Vec<ValueId>> {
    (0..dataset.schema().nominal_count())
        .map(|j| dataset.values_by_frequency(j).into_iter().take(k).collect())
        .collect()
}

/// Equi-depth split points for range-partitioning `dataset` on numeric dimension
/// `numeric_index` (a *numeric index*) into `shards` shards: the `shards - 1` empirical
/// quantiles of that dimension, ascending — the `bounds` a
/// `ShardPartition::RangeNumeric` wants so every shard starts with roughly `n / shards`
/// rows. `NaN` values sort last; a quantile landing on one becomes `+∞` so the result is
/// always `shards - 1` ascending non-NaN bounds. On heavily duplicated dimensions adjacent
/// bounds may coincide, which starves the shards between them — that is inherent to range
/// partitioning, not a defect of the estimate.
pub fn equi_depth_bounds(dataset: &Dataset, numeric_index: usize, shards: usize) -> Vec<f64> {
    if shards <= 1 || dataset.is_empty() {
        return vec![0.0; shards.saturating_sub(1)];
    }
    let mut values: Vec<f64> = (0..dataset.len() as PointId)
        .map(|p| dataset.numeric(p, numeric_index))
        .collect();
    values.sort_by(f64::total_cmp);
    (1..shards)
        .map(|i| {
            let v = values[(i * values.len() / shards).min(values.len() - 1)];
            if v.is_nan() {
                f64::INFINITY
            } else {
                v
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            n: 500,
            cardinality: 8,
            ..ExperimentConfig::scaled_default()
        }
    }

    #[test]
    fn table4_defaults() {
        let cfg = ExperimentConfig::paper_default();
        assert_eq!(cfg.n, 500_000);
        assert_eq!(cfg.numeric_dims, 3);
        assert_eq!(cfg.nominal_dims, 2);
        assert_eq!(cfg.cardinality, 20);
        assert_eq!(cfg.theta, 1.0);
        assert_eq!(cfg.pref_order, 3);
        assert_eq!(cfg.distribution, Distribution::AntiCorrelated);
        assert_eq!(cfg.total_dims(), 5);
        assert_eq!(
            ExperimentConfig::default(),
            ExperimentConfig::scaled_default()
        );
    }

    #[test]
    fn dataset_generation_respects_config() {
        let cfg = small_config();
        let data = cfg.generate_dataset();
        assert_eq!(data.len(), 500);
        assert_eq!(data.schema().numeric_count(), 3);
        assert_eq!(data.schema().nominal_count(), 2);
        assert_eq!(data.schema().nominal_cardinalities(), vec![8, 8]);
    }

    #[test]
    fn generated_queries_refine_the_template() {
        let cfg = small_config();
        let data = cfg.generate_dataset();
        let template = cfg.template(&data);
        let mut gen = cfg.query_generator();
        let queries = gen.random_preferences(data.schema(), &template, 3, 25, None);
        assert_eq!(queries.len(), 25);
        for q in &queries {
            assert!(
                q.refines(template.implicit().unwrap()),
                "query must refine the template"
            );
            assert_eq!(q.order(), 3);
            q.validate(data.schema()).unwrap();
        }
    }

    #[test]
    fn order_one_queries_equal_template_when_template_is_first_order() {
        let cfg = small_config();
        let data = cfg.generate_dataset();
        let template = cfg.template(&data);
        let mut gen = cfg.query_generator();
        let q = gen.random_preference(data.schema(), &template, 1, None);
        assert_eq!(&q, template.implicit().unwrap());
    }

    #[test]
    fn allowed_pool_is_respected() {
        let cfg = small_config();
        let data = cfg.generate_dataset();
        let template = cfg.template(&data);
        let allowed = top_k_values(&data, 3);
        assert_eq!(allowed.len(), 2);
        assert!(allowed.iter().all(|v| v.len() == 3));
        let mut gen = cfg.query_generator();
        for _ in 0..20 {
            let q = gen.random_preference(data.schema(), &template, 3, Some(&allowed));
            for (j, pool) in allowed.iter().enumerate() {
                for &v in q.dim(j).choices() {
                    let in_pool = pool.contains(&v);
                    let in_template = template.implicit().unwrap().dim(j).contains(v);
                    assert!(in_pool || in_template);
                }
            }
        }
    }

    #[test]
    fn order_is_capped_by_cardinality() {
        let cfg = ExperimentConfig {
            cardinality: 2,
            n: 200,
            ..ExperimentConfig::scaled_default()
        };
        let data = cfg.generate_dataset();
        let template = cfg.template(&data);
        let mut gen = cfg.query_generator();
        let q = gen.random_preference(data.schema(), &template, 5, None);
        for j in 0..2 {
            assert!(q.dim(j).order() <= 2);
        }
    }

    #[test]
    fn empty_template_queries_have_requested_order() {
        let cfg = small_config();
        let data = cfg.generate_dataset();
        let template = Template::empty(data.schema());
        let mut gen = QueryGenerator::new(9);
        let q = gen.random_preference(data.schema(), &template, 2, None);
        assert_eq!(q.order(), 2);
        assert!(q.dim(0).order() == 2 && q.dim(1).order() == 2);
        let _ = gen.rng().gen::<u32>();
    }

    #[test]
    fn zipf_workload_repeats_popular_preferences() {
        let cfg = small_config();
        let data = cfg.generate_dataset();
        let template = cfg.template(&data);
        let mut gen = cfg.query_generator();
        let queries = gen.zipf_workload(data.schema(), &template, 2, 20, 400, 1.0);
        assert_eq!(queries.len(), 400);
        for q in &queries {
            assert!(q.refines(template.implicit().unwrap()));
            q.validate(data.schema()).unwrap();
        }
        // At most pool_size distinct preferences, and the skew forces actual repetition.
        let mut distinct: Vec<&Preference> = Vec::new();
        for q in &queries {
            if !distinct.contains(&q) {
                distinct.push(q);
            }
        }
        assert!(distinct.len() <= 20);
        assert!(
            distinct.len() < queries.len(),
            "a Zipf-skewed stream of 400 over a pool of 20 must repeat"
        );
        // The most common preference should clearly dominate under θ = 1.
        let max_count = distinct
            .iter()
            .map(|d| queries.iter().filter(|q| q == d).count())
            .max()
            .unwrap();
        assert!(max_count > 400 / 20, "skew concentrates on the pool head");
    }

    #[test]
    fn zipf_workload_is_reproducible() {
        let cfg = small_config();
        let data = cfg.generate_dataset();
        let template = cfg.template(&data);
        let a = cfg
            .query_generator()
            .zipf_workload(data.schema(), &template, 2, 8, 50, 1.0);
        let b = cfg
            .query_generator()
            .zipf_workload(data.schema(), &template, 2, 8, 50, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "pool_size must be positive")]
    fn zipf_workload_rejects_empty_pool() {
        let cfg = small_config();
        let data = cfg.generate_dataset();
        let template = cfg.template(&data);
        cfg.query_generator()
            .zipf_workload(data.schema(), &template, 2, 0, 10, 1.0);
    }

    #[test]
    fn open_loop_workload_has_monotone_reproducible_poisson_arrivals() {
        use std::time::Duration;
        let cfg = small_config();
        let data = cfg.generate_dataset();
        let template = cfg.template(&data);
        let mean = Duration::from_millis(2);
        let a = cfg.query_generator().open_loop_zipf_workload(
            data.schema(),
            &template,
            2,
            16,
            2000,
            1.0,
            mean,
        );
        assert_eq!(a.len(), 2000);
        // Offsets are absolute and non-decreasing; queries refine the template.
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        for (_, pref) in &a {
            assert!(pref.refines(template.implicit().unwrap()));
            pref.validate(data.schema()).unwrap();
        }
        // The empirical mean gap matches the requested interarrival mean (law of large
        // numbers slack: ±30% over 2000 exponential draws is conservative).
        let mean_gap = a.last().unwrap().0.as_secs_f64() / a.len() as f64;
        let want = mean.as_secs_f64();
        assert!(
            (mean_gap - want).abs() < want * 0.3,
            "mean gap {mean_gap}s vs requested {want}s"
        );
        // Gaps vary (a Poisson process, not a fixed-rate ticker)...
        let gaps: Vec<f64> = a
            .windows(2)
            .map(|w| (w[1].0 - w[0].0).as_secs_f64())
            .collect();
        assert!(gaps.iter().any(|&g| g > want * 2.0));
        assert!(gaps.iter().any(|&g| g < want / 2.0));
        // ...and the whole schedule replays bit-identically from the seed.
        let b = cfg.query_generator().open_loop_zipf_workload(
            data.schema(),
            &template,
            2,
            16,
            2000,
            1.0,
            mean,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_workload_interleaves_valid_reads_and_writes() {
        let cfg = small_config();
        let data = cfg.generate_dataset();
        let template = cfg.template(&data);
        let mut gen = cfg.query_generator();
        let ops = gen.mixed_workload(data.schema(), &template, 2, 12, 400, 1.0, 0.3, data.len());
        assert_eq!(ops.len(), 400);
        let mut total_rows = data.len();
        let (mut queries, mut inserts, mut deletes) = (0usize, 0usize, 0usize);
        for op in &ops {
            match op {
                WorkloadOp::Query(pref) => {
                    pref.validate(data.schema()).unwrap();
                    assert!(pref.refines(template.implicit().unwrap()));
                    queries += 1;
                }
                WorkloadOp::Insert { numeric, nominal } => {
                    assert_eq!(numeric.len(), data.schema().numeric_count());
                    assert_eq!(nominal.len(), data.schema().nominal_count());
                    for (j, &v) in nominal.iter().enumerate() {
                        let card = data.schema().nominal_domain(j).unwrap().cardinality();
                        assert!((v as usize) < card, "value {v} outside domain {card}");
                    }
                    total_rows += 1;
                    inserts += 1;
                }
                WorkloadOp::Delete { row } => {
                    assert!(
                        (*row as usize) < total_rows,
                        "delete target {row} must exist at this stream position"
                    );
                    deletes += 1;
                }
            }
        }
        // ~30% writes: both kinds occur, reads still dominate.
        assert!(queries > 200, "got {queries} queries");
        assert!(inserts > 10, "got {inserts} inserts");
        assert!(deletes > 10, "got {deletes} deletes");
    }

    #[test]
    fn mixed_workload_is_reproducible_and_clamps_write_fraction() {
        let cfg = small_config();
        let data = cfg.generate_dataset();
        let template = cfg.template(&data);
        let a = cfg.query_generator().mixed_workload(
            data.schema(),
            &template,
            2,
            8,
            60,
            1.0,
            0.5,
            data.len(),
        );
        let b = cfg.query_generator().mixed_workload(
            data.schema(),
            &template,
            2,
            8,
            60,
            1.0,
            0.5,
            data.len(),
        );
        assert_eq!(a, b);
        // write_fraction 0 → pure query stream; > 1 clamps to all-writes.
        let reads = cfg.query_generator().mixed_workload(
            data.schema(),
            &template,
            2,
            8,
            40,
            1.0,
            0.0,
            data.len(),
        );
        assert!(reads.iter().all(|op| matches!(op, WorkloadOp::Query(_))));
        let writes = cfg.query_generator().mixed_workload(
            data.schema(),
            &template,
            2,
            8,
            40,
            1.0,
            7.5,
            data.len(),
        );
        assert!(writes.iter().all(|op| !matches!(op, WorkloadOp::Query(_))));
        // Starting from an empty dataset, the first write must be an insert.
        let from_empty =
            cfg.query_generator()
                .mixed_workload(data.schema(), &template, 2, 8, 40, 1.0, 1.0, 0);
        assert!(matches!(from_empty[0], WorkloadOp::Insert { .. }));
    }

    #[test]
    fn equi_depth_bounds_split_evenly() {
        let cfg = small_config();
        let data = cfg.generate_dataset();
        for shards in [2usize, 4, 7] {
            let bounds = equi_depth_bounds(&data, 0, shards);
            assert_eq!(bounds.len(), shards - 1);
            assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "ascending");
            // Each bucket holds roughly n / shards rows (quantile rounding slack).
            let mut counts = vec![0usize; shards];
            for p in 0..data.len() as PointId {
                let x = data.numeric(p, 0);
                counts[bounds.partition_point(|&b| x >= b).min(shards - 1)] += 1;
            }
            let target = data.len() / shards;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    c.abs_diff(target) <= target / 2 + 8,
                    "shard {s} holds {c} of {} rows over {shards} shards",
                    data.len()
                );
            }
        }
        // Degenerate inputs still produce a structurally valid bounds list.
        assert!(equi_depth_bounds(&data, 0, 1).is_empty());
        let empty = Dataset::empty(data.schema().clone());
        assert_eq!(equi_depth_bounds(&empty, 0, 4), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn top_k_values_ordered_by_frequency() {
        let cfg = small_config();
        let data = cfg.generate_dataset();
        let top = top_k_values(&data, 4);
        for (j, top_j) in top.iter().enumerate() {
            let freq = data.nominal_value_frequencies(j);
            for w in top_j.windows(2) {
                assert!(freq[w[0] as usize] >= freq[w[1] as usize]);
            }
        }
    }
}
