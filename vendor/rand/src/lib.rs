//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to a crates registry, so the
//! workspace vendors the tiny slice of `rand` 0.8 it actually uses: [`Rng`], [`SeedableRng`],
//! [`rngs::SmallRng`] and [`seq::SliceRandom`]. The generator is a `splitmix64`-seeded
//! `xoshiro256++`, which is statistically strong enough for test-data generation and
//! deterministic across platforms. Swap this crate for the real `rand` by replacing the
//! `[patch]`-free path dependency in the workspace manifest once a registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator seedable from a `u64`, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. The same seed always produces the
    /// same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from the "standard" distribution (`rng.gen()`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // The multiply-add can round up to exactly `end`; keep the range half-open.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// User-facing random value generation, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution (uniform over the type's
    /// domain for integers, `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
