//! Sequence helpers mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Extension trait for slices: in-place shuffling and random element choice.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
    }
}
