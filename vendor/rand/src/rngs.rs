//! Concrete generators. Only [`SmallRng`] is provided.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator (xoshiro256++), deterministic per seed.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce it from any
        // seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        Self { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=2);
            assert!((0..=2).contains(&w));
            let f = rng.gen_range(1.5..4.0);
            assert!((1.5..4.0).contains(&f));
        }
    }
}
