//! Offline, API-compatible subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository cannot reach a crates registry, so the workspace
//! vendors the slice of the criterion API its benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a fixed warm-up followed by `sample_size` timed
//! iterations, reporting min/mean — because the workspace uses these benches for relative
//! comparisons and compile coverage (`cargo bench --no-run` in CI), not publication-grade
//! statistics. Swap in the real criterion once a registry is reachable.
//!
//! Two environment variables gate CI behaviour:
//!
//! * `SKYLINE_BENCH_SAMPLES` — overrides every benchmark's sample count (the CI `bench-smoke`
//!   job sets it to a tiny budget so `cargo bench` finishes in seconds);
//! * `SKYLINE_BENCH_JSON` — path of a file to append one JSON line per benchmark to
//!   (`{"bench", "samples", "min_ns", "mean_ns"}`), which CI uploads as the per-PR
//!   `BENCH_*.json` perf-trajectory artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark manager: entry point handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for source compatibility with the generated criterion main; CLI filtering is
    /// not implemented.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: self.default_sample_size,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into().full_name(), sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration, created by
/// [`Criterion::benchmark_group`].
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.into().full_name()),
            self.sample_size,
            f,
        );
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (No-op here; upstream finalizes reports.)
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates a parameterized id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            name,
            parameter: None,
        }
    }
}

/// Timer handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_wanted: usize,
}

impl Bencher {
    /// Times `routine`, once per configured sample, recording wall-clock durations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        for _ in 0..self.iters_wanted {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Sample count actually used: the `SKYLINE_BENCH_SAMPLES` override when set and positive,
/// the configured count otherwise.
fn effective_sample_size(configured: usize) -> usize {
    std::env::var("SKYLINE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(configured)
}

/// Appends one JSON line for a finished benchmark to the `SKYLINE_BENCH_JSON` file, if set.
/// IO errors are swallowed: reporting must never fail a bench run.
fn append_json_report(label: &str, samples: usize, min: Duration, mean: Duration) {
    let Ok(path) = std::env::var("SKYLINE_BENCH_JSON") else {
        return;
    };
    if path.trim().is_empty() {
        return;
    }
    // `{label:?}` escapes quotes and backslashes, which is JSON-compatible for the ASCII
    // benchmark names this workspace uses.
    let line = format!(
        "{{\"bench\":{label:?},\"samples\":{samples},\"min_ns\":{},\"mean_ns\":{}}}\n",
        min.as_nanos(),
        mean.as_nanos()
    );
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let sample_size = effective_sample_size(sample_size);
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_wanted: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let min = *bencher.samples.iter().min().expect("nonempty samples");
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "  {label}: min {min:?}, mean {mean:?} over {} samples",
        bencher.samples.len()
    );
    append_json_report(label, bencher.samples.len(), min, mean);
}

/// Declares a group of benchmark functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that read or write the process-global env knobs.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn group_runs_configured_sample_count() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // A pre-set environment (e.g. reproducing the CI bench-smoke setup locally) must not
        // change the counts these tests assert.
        std::env::remove_var("SKYLINE_BENCH_SAMPLES");
        std::env::remove_var("SKYLINE_BENCH_JSON");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // One warm-up plus three timed samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // A pre-set environment (e.g. reproducing the CI bench-smoke setup locally) must not
        // change the counts these tests assert.
        std::env::remove_var("SKYLINE_BENCH_SAMPLES");
        std::env::remove_var("SKYLINE_BENCH_JSON");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("id", 7), &7usize, |b, &i| {
            b.iter(|| seen = i)
        });
        assert_eq!(seen, 7);
    }

    #[test]
    fn env_gates_sample_budget_and_json_report() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let json_path =
            std::env::temp_dir().join(format!("skyline_bench_report_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&json_path);
        std::env::set_var("SKYLINE_BENCH_SAMPLES", "2");
        std::env::set_var("SKYLINE_BENCH_JSON", &json_path);

        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(50); // Overridden down to 2 by the env var.
        let mut runs = 0;
        group.bench_function("gated", |b| b.iter(|| runs += 1));
        group.finish();

        std::env::remove_var("SKYLINE_BENCH_SAMPLES");
        std::env::remove_var("SKYLINE_BENCH_JSON");

        // One warm-up plus two timed samples.
        assert_eq!(runs, 3);
        let report = std::fs::read_to_string(&json_path).expect("JSON report written");
        let _ = std::fs::remove_file(&json_path);
        let line = report.lines().next().expect("one line per benchmark");
        assert!(line.starts_with("{\"bench\":\"g/gated\",\"samples\":2,\"min_ns\":"));
        assert!(line.ends_with('}'));
        assert!(line.contains("\"mean_ns\":"));
    }

    #[test]
    fn invalid_sample_override_is_ignored() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(effective_sample_size(7), 7);
        std::env::set_var("SKYLINE_BENCH_SAMPLES", "zero");
        assert_eq!(effective_sample_size(7), 7);
        std::env::set_var("SKYLINE_BENCH_SAMPLES", "0");
        assert_eq!(effective_sample_size(7), 7);
        std::env::remove_var("SKYLINE_BENCH_SAMPLES");
    }

    #[test]
    fn ids_render_names_and_parameters() {
        assert_eq!(BenchmarkId::new("n", 4).full_name(), "n/4");
        assert_eq!(BenchmarkId::from("plain").full_name(), "plain");
        assert_eq!(BenchmarkId::from_parameter(9).full_name(), "9");
    }
}
