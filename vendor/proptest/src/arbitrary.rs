//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, StandardSample};
use std::fmt::Debug;
use std::marker::PhantomData;

/// Returns the canonical strategy for `T` (uniform over the type's domain for integers and
/// `bool`, `[0, 1)` for floats).
pub fn any<T: StandardSample + Debug>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: StandardSample + Debug> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::from_seed(29);
        let s = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..50 {
            seen[usize::from(s.generate(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
