//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }

    pub(crate) fn clamped_pick(&self, max: usize, rng: &mut TestRng) -> usize {
        let hi = self.hi.min(max);
        let lo = self.lo.min(hi);
        rng.gen_range(lo..=hi)
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self { lo: len, hi: len }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self {
            lo: range.start,
            hi: range.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        Self {
            lo: *range.start(),
            hi: *range.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(3);
        assert_eq!(vec(0i32..5, 4).generate(&mut rng).len(), 4);
        for _ in 0..100 {
            let v = vec(0i32..5, 1..20).generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }
}
