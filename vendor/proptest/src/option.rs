//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy producing `Some` of the inner strategy's value three times out of four,
/// `None` otherwise (matching upstream's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::from_seed(23);
        let s = of(0i32..5);
        let mut some = false;
        let mut none = false;
        for _ in 0..100 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!((0..5).contains(&v));
                    some = true;
                }
                None => none = true,
            }
        }
        assert!(some && none);
    }
}
