//! Deterministic case runner and configuration.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a [`proptest!`](crate::proptest) block, mirroring
/// `proptest::test_runner::Config` for the fields this workspace uses.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented, so this is unused.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Random source handed to strategies. Wraps the vendored [`SmallRng`] so strategies can use
/// the full `rand::Rng` surface through [`RngCore`].
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates a generator for one test case.
    pub fn from_seed(seed: u64) -> Self {
        Self(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `config.cases` deterministic cases of `body`. The per-case seed is derived from the
/// test name and case index, so a failure reported for case `i` always reproduces.
pub fn run_cases<F: FnMut(&mut TestRng)>(config: &Config, name: &str, mut body: F) {
    let base = fnv1a(name.as_bytes());
    for case in 0..config.cases {
        let mut rng =
            TestRng::from_seed(base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest: property {name} failed on case {case}/{}",
                config.cases
            );
            std::panic::resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_runs_256_cases() {
        let mut count = 0;
        run_cases(&Config::default(), "counting", |_| count += 1);
        assert_eq!(count, 256);
    }

    #[test]
    fn seeds_are_deterministic_per_case() {
        let mut first: Vec<u64> = Vec::new();
        run_cases(
            &Config {
                cases: 5,
                ..Config::default()
            },
            "det",
            |rng| {
                first.push(rng.next_u64());
            },
        );
        let mut second: Vec<u64> = Vec::new();
        run_cases(
            &Config {
                cases: 5,
                ..Config::default()
            },
            "det",
            |rng| {
                second.push(rng.next_u64());
            },
        );
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }
}
