//! Offline, API-compatible subset of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment for this repository cannot reach a crates registry, so the workspace
//! vendors the slice of the proptest API its test suites use: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_shuffle`, [`collection::vec`],
//! [`sample::subsequence`], [`option::of`], [`arbitrary::any`], the [`proptest!`],
//! [`prop_oneof!`] and `prop_assert*` macros, and [`test_runner::Config`].
//!
//! Semantics differ from upstream in one deliberate way: failing inputs are **not shrunk**
//! (the failing case is printed verbatim instead), and case generation is fully
//! deterministic per test name, so failures always reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a [`proptest!`] body (delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tok:tt)*) => { assert!($($tok)*) };
}

/// Asserts equality inside a [`proptest!`] body (delegates to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tok:tt)*) => { assert_eq!($($tok)*) };
}

/// Asserts inequality inside a [`proptest!`] body (delegates to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tok:tt)*) => { assert_ne!($($tok)*) };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests.
///
/// Supported form (the one upstream documents most prominently):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0i32..10, v in proptest::collection::vec(0u8..5, 3)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr);
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    // Snapshot the RNG so the failing inputs can be regenerated (and only
                    // then Debug-formatted) in the failure branch; passing cases pay nothing.
                    let __snapshot = __rng.clone();
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::generate(&($strategy), __rng),)+
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body })
                    );
                    if let Err(__panic) = __outcome {
                        let mut __replay = __snapshot;
                        let __values = (
                            $($crate::strategy::Strategy::generate(&($strategy), &mut __replay),)+
                        );
                        eprintln!(
                            "proptest: {} failed with inputs:\n{:#?}",
                            stringify!($name),
                            __values
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
