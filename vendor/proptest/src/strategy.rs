//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt::Debug;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking machinery: a strategy is just
/// a deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `map_fn`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, map_fn: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            source: self,
            map_fn,
        }
    }

    /// Feeds every generated value into `flat_fn` and samples the strategy it returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, flat_fn: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap {
            source: self,
            flat_fn,
        }
    }

    /// Randomly permutes generated collections (sequences keep their multiset of elements).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { source: self }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute in place.
pub trait Shuffleable: Debug {
    /// Permutes the collection uniformly at random.
    fn shuffle_in_place(&mut self, rng: &mut TestRng);
}

impl<T: Debug> Shuffleable for Vec<T> {
    fn shuffle_in_place(&mut self, rng: &mut TestRng) {
        self.as_mut_slice().shuffle(rng);
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map_fn: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map_fn)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    flat_fn: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.flat_fn)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    source: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut value = self.source.generate(rng);
        value.shuffle_in_place(rng);
        value
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies, as produced by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one strategy");
        Self { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.arms.len());
        self.arms[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(11)
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3i32..9).generate(&mut r);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0i32..10, n))
            .prop_map(|v| v.len());
        for _ in 0..50 {
            let len = s.generate(&mut r);
            assert!((1..4).contains(&len));
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut r = rng();
        let s = crate::collection::vec(0i32..5, 6).prop_shuffle();
        for _ in 0..20 {
            let v = s.generate(&mut r);
            assert_eq!(v.len(), 6);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut r = rng();
        let s = Union::new(vec![(0i32..1).boxed(), (10i32..11).boxed()]);
        let mut seen = [false, false];
        for _ in 0..100 {
            match s.generate(&mut r) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn tuple_and_vec_of_strategies() {
        let mut r = rng();
        let s = (0i32..3, vec![0u16..4, 0u16..4]);
        let (a, b) = s.generate(&mut r);
        assert!((0..3).contains(&a));
        assert_eq!(b.len(), 2);
    }
}
