//! Sampling strategies (`proptest::sample::subsequence`).

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::seq::SliceRandom;
use std::fmt::Debug;

/// Strategy producing order-preserving subsequences of `values` whose length lies in `size`
/// (clamped to `values.len()`).
pub fn subsequence<T: Clone + Debug>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        values,
        size: size.into(),
    }
}

/// See [`subsequence`].
#[derive(Debug, Clone)]
pub struct Subsequence<T> {
    values: Vec<T>,
    size: SizeRange,
}

impl<T: Clone + Debug> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let len = self.size.clamped_pick(self.values.len(), rng);
        let mut indices: Vec<usize> = (0..self.values.len()).collect();
        indices.shuffle(rng);
        indices.truncate(len);
        indices.sort_unstable();
        indices
            .into_iter()
            .map(|i| self.values[i].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsequences_preserve_order_and_distinctness() {
        let mut rng = TestRng::from_seed(17);
        let base: Vec<u16> = (0..5).collect();
        for _ in 0..200 {
            let sub = subsequence(base.clone(), 0..=3).generate(&mut rng);
            assert!(sub.len() <= 3);
            assert!(
                sub.windows(2).all(|w| w[0] < w[1]),
                "not an ordered subsequence: {sub:?}"
            );
        }
    }

    #[test]
    fn size_is_clamped_to_len() {
        let mut rng = TestRng::from_seed(18);
        let sub = subsequence(vec![1u16, 2], 0..=10).generate(&mut rng);
        assert!(sub.len() <= 2);
    }
}
