//! Exercises the `proptest!` macro exactly as dependent crates use it: config header,
//! doc comments, tuple patterns, multiple arguments, and the failure path.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Doc comments and multiple `pattern in strategy` arguments must parse.
    #[test]
    fn passing_property(
        (a, b) in (0i32..10, 0i32..10),
        v in proptest::collection::vec(0u16..4, 1..6),
    ) {
        prop_assert!(a < 10 && b < 10);
        prop_assert!((1..6).contains(&v.len()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The failure branch regenerates and reports the inputs, then resumes the panic.
    #[test]
    #[should_panic(expected = "deliberate failure")]
    fn failing_property_panics(x in 0i32..100) {
        // Consume `x` by value to mirror bodies that move their inputs.
        let owned = Vec::from([x]);
        prop_assert!(owned.is_empty(), "deliberate failure on {}", owned[0]);
    }
}
